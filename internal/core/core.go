// Package core defines the paper's central abstraction: density dependent
// jump Markov processes represented in the limit n → ∞ by families of
// differential equations over tail densities.
//
// The state of a work-stealing system with indistinguishable processors is
// summarized by the vector s = (s₀, s₁, s₂, ...) where s_i is the fraction
// of processors holding at least i tasks. A valid tail vector satisfies
//
//	s₀ = 1,  s_i ≥ s_{i+1},  s_i ∈ [0, 1],  s_i → 0.
//
// Kurtz's theorem says that when the transition rates of the finite-n Markov
// chain depend only on these densities, the rescaled chain converges to the
// deterministic solution of ds/dt = f(s); fixed points of f predict
// steady-state behavior. Package meanfield provides the concrete f for
// every model in the paper; this package provides the shared vocabulary:
// the Model interface, tail-vector validation and projection, and the
// metrics (mean load and, through Little's law, expected time in system)
// read off a fixed point.
package core

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Model is a mean-field model given by an autonomous system of differential
// equations over a truncated state vector. Implementations decide the
// interpretation of the state (tails over tasks, tails over Erlang stages,
// paired vectors, ...) but must provide the common operations below.
type Model interface {
	// Name identifies the model in tables and logs.
	Name() string
	// Dim returns the truncated state dimension.
	Dim() int
	// Initial returns the canonical starting state (an empty system).
	Initial() []float64
	// Derivs writes f(x) into dx. It must not retain x or dx.
	Derivs(x, dx []float64)
	// Project restores feasibility of a state in place (clamping to [0,1],
	// re-imposing monotonicity, pinning conserved components).
	Project(x []float64)
	// MeanTasks returns the expected number of tasks per processor implied
	// by state x, counting tasks in transit where applicable.
	MeanTasks(x []float64) float64
	// ArrivalRate returns the per-processor task arrival rate λ.
	ArrivalRate() float64
}

// SojournTime converts a state's mean task count into the expected time a
// task spends in the system using Little's law: E[T] = E[L] / λ.
func SojournTime(m Model, x []float64) float64 {
	return m.MeanTasks(x) / m.ArrivalRate()
}

// FixedPoint is an equilibrium of a Model's differential equations.
type FixedPoint struct {
	Model    Model
	State    []float64 // the equilibrium tail vector(s)
	Residual float64   // ∞-norm of the derivative at State
}

// MeanTasks returns the expected tasks per processor at the fixed point.
func (fp FixedPoint) MeanTasks() float64 { return fp.Model.MeanTasks(fp.State) }

// SojournTime returns the expected time in system at the fixed point.
func (fp FixedPoint) SojournTime() float64 { return SojournTime(fp.Model, fp.State) }

// Observer is an optional Model interface for models whose State is not a
// single tails vector (split populations, stage space). It reports the
// observable quantities the simulator's metrics layer measures, in task
// space, so CLI readouts stay correct for every state layout.
type Observer interface {
	// BusyFraction returns the fraction of processors serving a task at
	// state x.
	BusyFraction(x []float64) float64
	// StealSuccessProb returns the probability that a steal attempt finds
	// a victim at or above the model's threshold at state x; ok is false
	// when the model defines no such quantity.
	StealSuccessProb(x []float64) (p float64, ok bool)
}

// StealCoupler is an optional Model interface for models whose state the
// hybrid engine can couple a tracked DES sample against even though the
// state is not a single task-indexed tail vector (e.g. the phase-type
// service model, whose state is occupancy by task count and service phase).
// It exposes the three quantities the Kurtz coupling reads off the fluid
// bulk: the task tails s_i (steal success probability and bulk victim-load
// sampling), the queue-emptying completion rate (the bulk steal-attempt
// rate), and a constant bound on it (the probe process's thinning bound).
//
// Tails-first models get this interface for free via an adapter in package
// sim; implementing it directly is only necessary for other state layouts.
type StealCoupler interface {
	// TaskTails appends the task-indexed tail vector implied by state x to
	// out[:0] and returns it: result[i] = fraction of processors with at
	// least i tasks.
	TaskTails(x, out []float64) []float64
	// EmptyingRate returns the per-processor rate of service completions
	// that leave the completing processor's queue empty at state x — the
	// rate at which bulk processors become steal-attempting thieves.
	EmptyingRate(x []float64) float64
	// EmptyingRateBound returns a constant upper bound on EmptyingRate over
	// all feasible states.
	EmptyingRateBound() float64
}

// BusyFraction returns the busy fraction at the fixed point: s₁ for
// tails-first models, or the model's own accounting when it implements
// Observer. At a stable fixed point this equals λ.
func (fp FixedPoint) BusyFraction() float64 {
	if o, ok := fp.Model.(Observer); ok {
		return o.BusyFraction(fp.State)
	}
	if len(fp.State) > 1 {
		return fp.State[1]
	}
	return 0
}

// StealSuccessProb returns the steal success probability at the fixed
// point for victim threshold t (the tail s_t for tails-first models),
// deferring to Observer models that track it differently; ok is false
// when the quantity is undefined (t out of range, or a model without it).
func (fp FixedPoint) StealSuccessProb(t int) (float64, bool) {
	if o, ok := fp.Model.(Observer); ok {
		return o.StealSuccessProb(fp.State)
	}
	if t >= 0 && t < len(fp.State) {
		return fp.State[t], true
	}
	return 0, false
}

// ValidateTails checks that s is a feasible tail vector: s[0] == 1 (within
// tol), entries in [−tol, 1+tol], non-increasing within tol, and a final
// entry below tailTol (so the truncation lost negligible mass). It returns
// a descriptive error on the first violation.
func ValidateTails(s []float64, tol, tailTol float64) error {
	if len(s) == 0 {
		return fmt.Errorf("core: empty tail vector")
	}
	if math.Abs(s[0]-1) > tol {
		return fmt.Errorf("core: s[0] = %v, want 1", s[0])
	}
	for i, v := range s {
		if v < -tol || v > 1+tol {
			return fmt.Errorf("core: s[%d] = %v outside [0,1]", i, v)
		}
		if i > 0 && v > s[i-1]+tol {
			return fmt.Errorf("core: tails increase at %d: s[%d]=%v > s[%d]=%v", i, i, v, i-1, s[i-1])
		}
	}
	if last := s[len(s)-1]; last > tailTol {
		return fmt.Errorf("core: truncation too short: s[%d] = %v > %v", len(s)-1, last, tailTol)
	}
	return nil
}

// ProjectTails restores feasibility of a tail vector in place: pins s[0]=1,
// clamps every entry to [0, 1], and enforces monotone non-increase by a
// running minimum. It is the projection used by the Anderson solver for
// single-vector models.
func ProjectTails(s []float64) {
	if len(s) == 0 {
		return
	}
	s[0] = 1
	prev := 1.0
	for i := 1; i < len(s); i++ {
		v := numeric.Clamp(s[i], 0, 1)
		if v > prev {
			v = prev
		}
		s[i] = v
		prev = v
	}
}

// TailsToPMF converts a tail vector s into the probability mass function
// p_i = s_i − s_{i+1} (fraction of processors with exactly i tasks). The
// mass of the final index absorbs the truncated tail.
func TailsToPMF(s []float64) []float64 {
	p := make([]float64, len(s))
	for i := 0; i < len(s)-1; i++ {
		p[i] = s[i] - s[i+1]
	}
	p[len(s)-1] = s[len(s)-1]
	return p
}

// PMFToTails converts a mass function p into tails s_i = Σ_{j≥i} p_j.
// The result has the same length as p and s[0] equals the total mass.
func PMFToTails(p []float64) []float64 {
	s := make([]float64, len(p))
	var acc numeric.KahanSum
	for i := len(p) - 1; i >= 0; i-- {
		acc.Add(p[i])
		s[i] = acc.Sum()
	}
	return s
}

// MeanFromTails returns Σ_{i≥1} s_i, the expected number of tasks per
// processor for a task-indexed tail vector.
func MeanFromTails(s []float64) float64 {
	var k numeric.KahanSum
	for i := 1; i < len(s); i++ {
		k.Add(s[i])
	}
	return k.Sum()
}

// TruncationDim picks a state dimension for a model whose tails decay
// geometrically with ratio at most r: large enough that the discarded mass
// r^L is below tol, clamped to [minDim, maxDim]. Models pass their known
// worst-case ratio (λ without stealing).
func TruncationDim(r, tol float64, minDim, maxDim int) int {
	k := numeric.GeomTailCount(r, tol, maxDim)
	if k < minDim {
		k = minDim
	}
	return k + 2 // slack so the boundary condition s_L = 0 is harmless
}

// EmptyTails returns the tail vector of an empty system: s₀ = 1, all other
// entries 0.
func EmptyTails(dim int) []float64 {
	s := make([]float64, dim)
	s[0] = 1
	return s
}

// GeometricTails returns the tail vector s_i = ratio^i truncated to dim,
// the M/M/1 equilibrium shape. Useful as a warm start and in tests.
func GeometricTails(ratio float64, dim int) []float64 {
	s := make([]float64, dim)
	v := 1.0
	for i := range s {
		s[i] = v
		v *= ratio
	}
	return s
}

// TailRatio estimates the asymptotic geometric decay ratio of a tail vector
// by averaging successive ratios over indices where the tail is still well
// above floor. Returns NaN if fewer than two usable indices exist.
func TailRatio(s []float64, from int, floor float64) float64 {
	var sum numeric.KahanSum
	count := 0
	for i := from; i+1 < len(s); i++ {
		if s[i+1] <= floor || s[i] <= floor {
			break
		}
		sum.Add(s[i+1] / s[i])
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return sum.Sum() / float64(count)
}
