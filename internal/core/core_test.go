package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestValidateTailsAccepts(t *testing.T) {
	s := []float64{1, 0.5, 0.25, 0.125, 1e-15}
	if err := ValidateTails(s, 1e-9, 1e-9); err != nil {
		t.Errorf("valid tails rejected: %v", err)
	}
}

func TestValidateTailsRejects(t *testing.T) {
	cases := []struct {
		name string
		s    []float64
	}{
		{"empty", nil},
		{"s0 not 1", []float64{0.9, 0.5, 0}},
		{"negative", []float64{1, -0.2, 0}},
		{"above one", []float64{1, 1.2, 0}},
		{"increasing", []float64{1, 0.2, 0.4, 0}},
		{"fat tail", []float64{1, 0.9, 0.8}},
	}
	for _, c := range cases {
		if err := ValidateTails(c.s, 1e-9, 1e-9); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestProjectTails(t *testing.T) {
	s := []float64{0.7, 1.3, 0.5, 0.6, -0.1}
	ProjectTails(s)
	if s[0] != 1 {
		t.Errorf("s[0] = %v, want pinned to 1", s[0])
	}
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1] || s[i] < 0 || s[i] > 1 {
			t.Errorf("projection infeasible at %d: %v", i, s)
		}
	}
	if s[2] != 0.5 || s[3] != 0.5 || s[4] != 0 {
		t.Errorf("projection values wrong: %v", s)
	}
}

func TestPMFRoundTrip(t *testing.T) {
	s := []float64{1, 0.6, 0.3, 0.1, 0}
	p := TailsToPMF(s)
	// p = (0.4, 0.3, 0.2, 0.1, 0)
	want := []float64{0.4, 0.3, 0.2, 0.1, 0}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Errorf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
	back := PMFToTails(p)
	for i := range s {
		if math.Abs(back[i]-s[i]) > 1e-12 {
			t.Errorf("round trip s[%d] = %v, want %v", i, back[i], s[i])
		}
	}
}

func TestMeanFromTails(t *testing.T) {
	// M/M/1 with λ = 0.5: s_i = 0.5^i, mean = Σ_{i≥1} 0.5^i = 1.
	s := GeometricTails(0.5, 60)
	if got := MeanFromTails(s); math.Abs(got-1) > 1e-12 {
		t.Errorf("MeanFromTails = %v, want 1", got)
	}
}

func TestTruncationDim(t *testing.T) {
	d := TruncationDim(0.5, 1e-12, 10, 10000)
	// 0.5^40 ≈ 9e-13, so ~40+2.
	if d < 40 || d > 50 {
		t.Errorf("TruncationDim = %d, want ~42", d)
	}
	if got := TruncationDim(0.99, 1e-12, 10, 100); got != 102 {
		t.Errorf("clamped TruncationDim = %d, want 102", got)
	}
	if got := TruncationDim(0.1, 1e-3, 50, 1000); got != 52 {
		t.Errorf("min-clamped TruncationDim = %d, want 52", got)
	}
}

func TestEmptyTails(t *testing.T) {
	s := EmptyTails(5)
	if s[0] != 1 {
		t.Error("EmptyTails s[0] != 1")
	}
	for i := 1; i < 5; i++ {
		if s[i] != 0 {
			t.Errorf("EmptyTails s[%d] = %v", i, s[i])
		}
	}
}

func TestTailRatio(t *testing.T) {
	s := GeometricTails(0.7, 40)
	got := TailRatio(s, 2, 1e-12)
	if math.Abs(got-0.7) > 1e-9 {
		t.Errorf("TailRatio = %v, want 0.7", got)
	}
	if !math.IsNaN(TailRatio([]float64{1, 0, 0}, 1, 1e-12)) {
		t.Error("TailRatio of dead tail should be NaN")
	}
}

// Property: ProjectTails output always passes ValidateTails (with a loose
// tail tolerance since random vectors need not decay).
func TestProjectThenValidate(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := make([]float64, 20)
		for i := range s {
			s[i] = r.Float64()*3 - 1
		}
		// Force a decaying end so the tail check passes.
		s[len(s)-1] = 0
		ProjectTails(s)
		return ValidateTails(s, 1e-12, 1.1) == nil && s[len(s)-1] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: TailsToPMF mass sums to s[0] and PMFToTails inverts it.
func TestPMFMassConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := make([]float64, 15)
		for i := range s {
			s[i] = r.Float64()
		}
		s[0] = 1
		ProjectTails(s)
		p := TailsToPMF(s)
		var mass float64
		for _, v := range p {
			mass += v
		}
		if math.Abs(mass-1) > 1e-9 {
			return false
		}
		back := PMFToTails(p)
		for i := range s {
			if math.Abs(back[i]-s[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
