// Command wssweep sweeps one model parameter and prints E[T] from the
// mean-field fixed point for each value — the quick way to explore design
// questions like "what threshold should I use for my transfer latency?".
//
// Examples:
//
//	wssweep -sweep threshold -lambda 0.9 -max 8
//	wssweep -sweep transfer-threshold -lambda 0.8 -r 0.25 -max 8
//	wssweep -sweep choices -lambda 0.95 -max 5
//	wssweep -sweep retry -lambda 0.9 -T 2
//	wssweep -sweep multisteal -lambda 0.9 -T 10
//	wssweep -sweep lambda -model simple
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/meanfield"
	"repro/internal/table"
)

func main() {
	sweep := flag.String("sweep", "threshold", "parameter to sweep: threshold, transfer-threshold, choices, retry, multisteal, lambda")
	model := flag.String("model", "simple", "model for -sweep lambda: nosteal, simple, choices")
	lambda := flag.Float64("lambda", 0.9, "arrival rate")
	tFlag := flag.Int("T", 2, "victim threshold (for retry and multisteal sweeps)")
	rFlag := flag.Float64("r", 0.25, "transfer rate (for transfer-threshold sweep)")
	maxV := flag.Int("max", 8, "largest swept integer value")
	flag.Parse()

	t := table.New(fmt.Sprintf("Sweep %s (λ = %g)", *sweep, *lambda), "value", "E[T]")
	add := func(label string, v float64) {
		t.AddRow(label, fmt.Sprintf("%.4f", v))
	}

	switch *sweep {
	case "threshold":
		for T := 2; T <= *maxV; T++ {
			add(fmt.Sprintf("T=%d", T), meanfield.SolveThreshold(*lambda, T).SojournTime())
		}
	case "transfer-threshold":
		for T := 2; T <= *maxV; T++ {
			fp := meanfield.MustSolve(meanfield.NewTransfer(*lambda, T, *rFlag), meanfield.SolveOptions{})
			add(fmt.Sprintf("T=%d", T), fp.SojournTime())
		}
	case "choices":
		for d := 1; d <= *maxV; d++ {
			fp := meanfield.MustSolve(meanfield.NewChoices(*lambda, 2, d), meanfield.SolveOptions{})
			add(fmt.Sprintf("d=%d", d), fp.SojournTime())
		}
	case "retry":
		for _, r := range []float64{0, 0.25, 0.5, 1, 2, 4, 8, 16} {
			fp := meanfield.MustSolve(meanfield.NewRepeated(*lambda, *tFlag, r), meanfield.SolveOptions{})
			add(fmt.Sprintf("r=%g", r), fp.SojournTime())
		}
	case "multisteal":
		for k := 1; 2*k <= *tFlag; k++ {
			fp := meanfield.MustSolve(meanfield.NewMultiSteal(*lambda, *tFlag, k), meanfield.SolveOptions{})
			add(fmt.Sprintf("k=%d", k), fp.SojournTime())
		}
		half := meanfield.MustSolve(meanfield.NewStealHalf(*lambda, *tFlag), meanfield.SolveOptions{})
		add("k=⌈j/2⌉", half.SojournTime())
	case "lambda":
		for _, lam := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99} {
			var v float64
			switch *model {
			case "nosteal":
				v = meanfield.MM1SojournTime(lam)
			case "simple":
				v = meanfield.SolveSimpleWS(lam).SojournTime()
			case "choices":
				v = meanfield.MustSolve(meanfield.NewChoices(lam, 2, 2), meanfield.SolveOptions{}).SojournTime()
			default:
				fmt.Fprintf(os.Stderr, "wssweep: unknown model %q\n", *model)
				os.Exit(2)
			}
			add(fmt.Sprintf("λ=%g", lam), v)
		}
	default:
		fmt.Fprintf(os.Stderr, "wssweep: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wssweep:", err)
		os.Exit(1)
	}
}
