// Command wssweep sweeps one model parameter and prints E[T] from the
// mean-field fixed point for each value — the quick way to explore design
// questions like "what threshold should I use for my transfer latency?".
//
// Examples:
//
//	wssweep -sweep threshold -lambda 0.9 -max 8
//	wssweep -sweep transfer-threshold -lambda 0.8 -r 0.25 -max 8
//	wssweep -sweep choices -lambda 0.95 -max 5
//	wssweep -sweep retry -lambda 0.9 -T 2
//	wssweep -sweep multisteal -lambda 0.9 -T 10
//	wssweep -sweep lambda -model simple
//
// The swept values solve independently, so they run in parallel on -workers
// pool workers (GOMAXPROCS by default); rows are emitted in sweep order
// regardless of which solve finishes first.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/meanfield"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/table"
)

func main() {
	os.Exit(run())
}

// run holds the whole program so that deferred cleanups — most importantly
// the profile flushes — execute on every exit path; main's os.Exit would
// skip them.
func run() (code int) {
	sweep := flag.String("sweep", "threshold", "parameter to sweep: threshold, transfer-threshold, choices, retry, multisteal, lambda")
	model := flag.String("model", "simple", "model for -sweep lambda: nosteal, simple, choices")
	lambda := flag.Float64("lambda", 0.9, "arrival rate")
	tFlag := flag.Int("T", 2, "victim threshold (for retry and multisteal sweeps)")
	rFlag := flag.Float64("r", 0.25, "transfer rate (for transfer-threshold sweep)")
	maxV := flag.Int("max", 8, "largest swept integer value")
	workers := flag.Int("workers", 0, "parallel solver workers (0 = GOMAXPROCS)")
	metricsFlag := flag.Bool("metrics", false, "add fixed-point metrics columns (E[L], utilization, steal success s_T)")
	jsonFlag := flag.Bool("json", false, "emit the table as JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	stopCPU, err := cliutil.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wssweep:", err)
		return 1
	}
	defer func() {
		stopCPU()
		if err := cliutil.WriteMemProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "wssweep:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	headers := []string{"value", "E[T]"}
	if *metricsFlag {
		headers = append(headers, "E[L]", "utilization", "s_T")
	}
	t := table.New(fmt.Sprintf("Sweep %s (λ = %g)", *sweep, *lambda), headers...)
	// cells renders one row; fp may be nil for closed-form entries with no
	// tail vector behind them (the metrics columns then show "-").
	cells := func(label string, v float64, fp *core.FixedPoint, T int) []string {
		if !*metricsFlag {
			return []string{label, fmt.Sprintf("%.4f", v)}
		}
		meanTasks, util, sT := "-", "-", "-"
		if fp != nil {
			meanTasks = fmt.Sprintf("%.4f", fp.MeanTasks())
			util = fmt.Sprintf("%.4f", fp.BusyFraction())
			if p, ok := fp.StealSuccessProb(T); ok {
				sT = fmt.Sprintf("%.4f", p)
			}
		}
		return []string{label, fmt.Sprintf("%.4f", v), meanTasks, util, sT}
	}

	// Each swept value becomes one deferred row computation; they all run on
	// the shared pool and land in their sweep-order slot.
	var jobs []func() []string
	addJob := func(fn func() []string) { jobs = append(jobs, fn) }

	switch *sweep {
	case "threshold":
		for T := 2; T <= *maxV; T++ {
			T := T
			addJob(func() []string {
				fp := meanfield.MustSolve(meanfield.NewThreshold(*lambda, T), meanfield.SolveOptions{})
				return cells(fmt.Sprintf("T=%d", T), fp.SojournTime(), &fp, T)
			})
		}
	case "transfer-threshold":
		for T := 2; T <= *maxV; T++ {
			T := T
			addJob(func() []string {
				fp := meanfield.MustSolve(meanfield.NewTransfer(*lambda, T, *rFlag), meanfield.SolveOptions{})
				return cells(fmt.Sprintf("T=%d", T), fp.SojournTime(), &fp, T)
			})
		}
	case "choices":
		for d := 1; d <= *maxV; d++ {
			d := d
			addJob(func() []string {
				fp := meanfield.MustSolve(meanfield.NewChoices(*lambda, 2, d), meanfield.SolveOptions{})
				return cells(fmt.Sprintf("d=%d", d), fp.SojournTime(), &fp, 2)
			})
		}
	case "retry":
		for _, r := range []float64{0, 0.25, 0.5, 1, 2, 4, 8, 16} {
			r := r
			addJob(func() []string {
				fp := meanfield.MustSolve(meanfield.NewRepeated(*lambda, *tFlag, r), meanfield.SolveOptions{})
				return cells(fmt.Sprintf("r=%g", r), fp.SojournTime(), &fp, *tFlag)
			})
		}
	case "multisteal":
		for k := 1; 2*k <= *tFlag; k++ {
			k := k
			addJob(func() []string {
				fp := meanfield.MustSolve(meanfield.NewMultiSteal(*lambda, *tFlag, k), meanfield.SolveOptions{})
				return cells(fmt.Sprintf("k=%d", k), fp.SojournTime(), &fp, *tFlag)
			})
		}
		addJob(func() []string {
			half := meanfield.MustSolve(meanfield.NewStealHalf(*lambda, *tFlag), meanfield.SolveOptions{})
			return cells("k=⌈j/2⌉", half.SojournTime(), &half, *tFlag)
		})
	case "lambda":
		switch *model {
		case "nosteal", "simple", "choices":
		default:
			fmt.Fprintf(os.Stderr, "wssweep: unknown model %q\n", *model)
			return 2
		}
		for _, lam := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99} {
			lam := lam
			addJob(func() []string {
				var v float64
				var fp *core.FixedPoint
				switch *model {
				case "nosteal":
					v = meanfield.MM1SojournTime(lam)
				case "simple":
					s := meanfield.MustSolve(meanfield.NewSimpleWS(lam), meanfield.SolveOptions{})
					v, fp = s.SojournTime(), &s
				case "choices":
					s := meanfield.MustSolve(meanfield.NewChoices(lam, 2, 2), meanfield.SolveOptions{})
					v, fp = s.SojournTime(), &s
				}
				return cells(fmt.Sprintf("λ=%g", lam), v, fp, 2)
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "wssweep: unknown sweep %q\n", *sweep)
		return 2
	}

	rows := make([][]string, len(jobs))
	pool := sched.New(*workers)
	for i, job := range jobs {
		i, job := i, job
		pool.Go(func(*sim.Runner) { rows[i] = job() })
	}
	pool.Close() // waits for every job
	for _, r := range rows {
		t.AddRow(r...)
	}

	if *jsonFlag {
		err = t.WriteJSON(os.Stdout)
	} else {
		err = t.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wssweep:", err)
		return 1
	}
	return 0
}
