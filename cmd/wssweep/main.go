// Command wssweep sweeps one model parameter and prints E[T] from the
// mean-field fixed point for each value — the quick way to explore design
// questions like "what threshold should I use for my transfer latency?".
//
// Examples:
//
//	wssweep -sweep threshold -lambda 0.9 -max 8
//	wssweep -sweep transfer-threshold -lambda 0.8 -r 0.25 -max 8
//	wssweep -sweep choices -lambda 0.95 -max 5
//	wssweep -sweep retry -lambda 0.9 -T 2
//	wssweep -sweep multisteal -lambda 0.9 -T 10
//	wssweep -sweep lambda -model simple
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/meanfield"
	"repro/internal/table"
)

func main() {
	sweep := flag.String("sweep", "threshold", "parameter to sweep: threshold, transfer-threshold, choices, retry, multisteal, lambda")
	model := flag.String("model", "simple", "model for -sweep lambda: nosteal, simple, choices")
	lambda := flag.Float64("lambda", 0.9, "arrival rate")
	tFlag := flag.Int("T", 2, "victim threshold (for retry and multisteal sweeps)")
	rFlag := flag.Float64("r", 0.25, "transfer rate (for transfer-threshold sweep)")
	maxV := flag.Int("max", 8, "largest swept integer value")
	metricsFlag := flag.Bool("metrics", false, "add fixed-point metrics columns (E[L], utilization, steal success s_T)")
	jsonFlag := flag.Bool("json", false, "emit the table as JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	stopCPU, err := cliutil.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wssweep:", err)
		os.Exit(1)
	}

	headers := []string{"value", "E[T]"}
	if *metricsFlag {
		headers = append(headers, "E[L]", "utilization", "s_T")
	}
	t := table.New(fmt.Sprintf("Sweep %s (λ = %g)", *sweep, *lambda), headers...)
	// add appends one row; fp may be nil for closed-form entries with no
	// tail vector behind them (the metrics columns then show "-").
	add := func(label string, v float64, fp *core.FixedPoint, T int) {
		if !*metricsFlag {
			t.AddRow(label, fmt.Sprintf("%.4f", v))
			return
		}
		meanTasks, util, sT := "-", "-", "-"
		if fp != nil {
			meanTasks = fmt.Sprintf("%.4f", fp.MeanTasks())
			util = fmt.Sprintf("%.4f", fp.BusyFraction())
			if p, ok := fp.StealSuccessProb(T); ok {
				sT = fmt.Sprintf("%.4f", p)
			}
		}
		t.AddRow(label, fmt.Sprintf("%.4f", v), meanTasks, util, sT)
	}

	switch *sweep {
	case "threshold":
		for T := 2; T <= *maxV; T++ {
			fp := meanfield.MustSolve(meanfield.NewThreshold(*lambda, T), meanfield.SolveOptions{})
			add(fmt.Sprintf("T=%d", T), fp.SojournTime(), &fp, T)
		}
	case "transfer-threshold":
		for T := 2; T <= *maxV; T++ {
			fp := meanfield.MustSolve(meanfield.NewTransfer(*lambda, T, *rFlag), meanfield.SolveOptions{})
			add(fmt.Sprintf("T=%d", T), fp.SojournTime(), &fp, T)
		}
	case "choices":
		for d := 1; d <= *maxV; d++ {
			fp := meanfield.MustSolve(meanfield.NewChoices(*lambda, 2, d), meanfield.SolveOptions{})
			add(fmt.Sprintf("d=%d", d), fp.SojournTime(), &fp, 2)
		}
	case "retry":
		for _, r := range []float64{0, 0.25, 0.5, 1, 2, 4, 8, 16} {
			fp := meanfield.MustSolve(meanfield.NewRepeated(*lambda, *tFlag, r), meanfield.SolveOptions{})
			add(fmt.Sprintf("r=%g", r), fp.SojournTime(), &fp, *tFlag)
		}
	case "multisteal":
		for k := 1; 2*k <= *tFlag; k++ {
			fp := meanfield.MustSolve(meanfield.NewMultiSteal(*lambda, *tFlag, k), meanfield.SolveOptions{})
			add(fmt.Sprintf("k=%d", k), fp.SojournTime(), &fp, *tFlag)
		}
		half := meanfield.MustSolve(meanfield.NewStealHalf(*lambda, *tFlag), meanfield.SolveOptions{})
		add("k=⌈j/2⌉", half.SojournTime(), &half, *tFlag)
	case "lambda":
		for _, lam := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99} {
			var v float64
			var fp *core.FixedPoint
			switch *model {
			case "nosteal":
				v = meanfield.MM1SojournTime(lam)
			case "simple":
				s := meanfield.MustSolve(meanfield.NewSimpleWS(lam), meanfield.SolveOptions{})
				v, fp = s.SojournTime(), &s
			case "choices":
				s := meanfield.MustSolve(meanfield.NewChoices(lam, 2, 2), meanfield.SolveOptions{})
				v, fp = s.SojournTime(), &s
			default:
				fmt.Fprintf(os.Stderr, "wssweep: unknown model %q\n", *model)
				os.Exit(2)
			}
			add(fmt.Sprintf("λ=%g", lam), v, fp, 2)
		}
	default:
		fmt.Fprintf(os.Stderr, "wssweep: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}

	if *jsonFlag {
		err = t.WriteJSON(os.Stdout)
	} else {
		err = t.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wssweep:", err)
		os.Exit(1)
	}
	stopCPU()
	if err := cliutil.WriteMemProfile(*memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "wssweep:", err)
		os.Exit(1)
	}
}
