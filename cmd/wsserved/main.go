// Command wsserved is the model-serving daemon: it exposes the
// repository's mean-field solvers and finite-n simulator over HTTP with
// result caching, request coalescing, and admission control (see
// internal/serve for the endpoint list and README "Serving" for curl
// examples).
//
// Usage:
//
//	wsserved -addr :8080
//	wsserved -addr :8080 -workers 4 -queue 32 -cache 1024 -deadline 30s -log json
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips to 503,
// in-flight requests drain (up to -drain), then the scheduler pool is
// released.
//
// Robustness knobs (see README "Operations"): -read-timeout/-write-timeout/
// -idle-timeout harden the HTTP server against slow clients; -breaker.*
// tunes the /v1/simulate circuit breaker; and the -chaos.* flags enable
// deterministic fault injection for self-tests (never set them in
// production — the zero values are fully inert).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

// run returns the process exit code instead of calling os.Exit so that
// deferred cleanups always execute and tests can drive it directly.
func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "scheduler pool workers (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 512, "result-cache entries")
	queue := flag.Int("queue", 16, "simulate admission slots (excess requests get 429)")
	deadline := flag.Duration("deadline", 60*time.Second, "per-request simulate deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	logFormat := flag.String("log", "text", "request log format: text, json, off")

	// HTTP server timeouts. WriteTimeout covers the whole handler in
	// net/http, so its default must exceed the simulate deadline or long
	// simulations would be cut mid-response; the streaming route instead
	// re-arms a per-write deadline (-stream-write-timeout) and is the reason
	// WriteTimeout cannot be tight.
	readTimeout := flag.Duration("read-timeout", 30*time.Second,
		"max time to read a request, header included (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 90*time.Second,
		"max time from end of request header to end of response (0 = none); must exceed -deadline")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second,
		"max keep-alive idle time per connection (0 = none)")
	streamWriteTimeout := flag.Duration("stream-write-timeout", 10*time.Second,
		"per-write progress deadline on streaming responses")

	// Circuit breaker on /v1/simulate.
	brkThreshold := flag.Float64("breaker.threshold", 0.5,
		"failure rate over the window that opens the simulate breaker")
	brkWindow := flag.Int("breaker.window", 20, "simulate breaker sliding-window size")
	brkMinSamples := flag.Int("breaker.min-samples", 10,
		"outcomes required in the window before the breaker may open")
	brkCooldown := flag.Duration("breaker.cooldown", 5*time.Second,
		"open-state hold time before a half-open probe")

	// Deterministic fault injection (self-test only; inert at defaults).
	chaosSeed := flag.Uint64("chaos.seed", 0, "chaos decision-stream seed")
	chaosPLatency := flag.Float64("chaos.p.latency", 0, "per-probe latency-fault probability")
	chaosPError := flag.Float64("chaos.p.error", 0, "per-probe error-fault probability")
	chaosPPanic := flag.Float64("chaos.p.panic", 0, "per-probe panic-fault probability")
	chaosPPerturb := flag.Float64("chaos.p.perturb", 0, "per-probe numeric-perturbation probability")
	chaosLatency := flag.Duration("chaos.latency", 5*time.Millisecond, "injected latency per fault")
	flag.Parse()

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		logger = slog.New(slog.DiscardHandler)
	default:
		fmt.Fprintf(os.Stderr, "wsserved: unknown log format %q\n", *logFormat)
		return 2
	}

	// The injector stays nil unless at least one probability is set, so the
	// default daemon carries zero chaos machinery on its hot paths.
	var inj *chaos.Injector
	if *chaosPLatency > 0 || *chaosPError > 0 || *chaosPPanic > 0 || *chaosPPerturb > 0 {
		inj = chaos.New(chaos.Config{
			Seed:     *chaosSeed,
			PLatency: *chaosPLatency,
			PError:   *chaosPError,
			PPanic:   *chaosPPanic,
			PPerturb: *chaosPPerturb,
			Latency:  *chaosLatency,
		})
		logger.Warn("chaos injection enabled",
			"seed", *chaosSeed,
			"p_latency", *chaosPLatency, "p_error", *chaosPError,
			"p_panic", *chaosPPanic, "p_perturb", *chaosPPerturb)
	}

	srv := serve.New(serve.Config{
		Workers:            *workers,
		CacheEntries:       *cache,
		QueueDepth:         *queue,
		SimDeadline:        *deadline,
		StreamWriteTimeout: *streamWriteTimeout,
		Logger:             logger,
		Chaos:              inj,
		BreakerWindow:      *brkWindow,
		BreakerThreshold:   *brkThreshold,
		BreakerMinSamples:  *brkMinSamples,
		BreakerCooldown:    *brkCooldown,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsserved:", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	if *writeTimeout > 0 && *writeTimeout <= *deadline {
		logger.Warn("write-timeout does not exceed the simulate deadline; long simulations may be cut off",
			"write_timeout", writeTimeout.String(), "deadline", deadline.String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String())

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "wsserved:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop advertising readiness, then drain.
	logger.Info("shutting down", "drain", drain.String())
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "wsserved: shutdown:", err)
		return 1
	}
	logger.Info("drained")
	return 0
}
