// Command wsserved is the model-serving daemon: it exposes the
// repository's mean-field solvers and finite-n simulator over HTTP with
// result caching, request coalescing, and admission control (see
// internal/serve for the endpoint list and README "Serving" for curl
// examples).
//
// Usage:
//
//	wsserved -addr :8080
//	wsserved -addr :8080 -workers 4 -queue 32 -cache 1024 -deadline 30s -log json
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips to 503,
// in-flight requests drain (up to -drain), then the scheduler pool is
// released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

// run returns the process exit code instead of calling os.Exit so that
// deferred cleanups always execute and tests can drive it directly.
func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "scheduler pool workers (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 512, "result-cache entries")
	queue := flag.Int("queue", 16, "simulate admission slots (excess requests get 429)")
	deadline := flag.Duration("deadline", 60*time.Second, "per-request simulate deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	logFormat := flag.String("log", "text", "request log format: text, json, off")
	flag.Parse()

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		logger = slog.New(slog.DiscardHandler)
	default:
		fmt.Fprintf(os.Stderr, "wsserved: unknown log format %q\n", *logFormat)
		return 2
	}

	srv := serve.New(serve.Config{
		Workers:      *workers,
		CacheEntries: *cache,
		QueueDepth:   *queue,
		SimDeadline:  *deadline,
		Logger:       logger,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsserved:", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String())

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "wsserved:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop advertising readiness, then drain.
	logger.Info("shutting down", "drain", drain.String())
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "wsserved: shutdown:", err)
		return 1
	}
	logger.Info("drained")
	return 0
}
