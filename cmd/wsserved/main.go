// Command wsserved is the model-serving daemon: it exposes the
// repository's mean-field solvers and finite-n simulator over HTTP with
// result caching, request coalescing, and admission control (see
// internal/serve for the endpoint list and README "Serving" for curl
// examples).
//
// Usage:
//
//	wsserved -addr :8080
//	wsserved -addr :8080 -workers 4 -queue 32 -cache 1024 -deadline 30s -log json
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips to 503,
// in-flight requests drain (up to -drain), then the scheduler pool is
// released.
//
// Robustness knobs (see README "Operations"): -read-timeout/-write-timeout/
// -idle-timeout harden the HTTP server against slow clients; -breaker.*
// tunes the /v1/simulate circuit breaker; and the -chaos.* flags enable
// deterministic fault injection for self-tests (never set them in
// production — the zero values are fully inert).
//
// Cluster mode (see README "Cluster Operations"): -self and -peers attach
// the replica to a static peer group that gossips load, routes cached
// requests by consistent hash, and steals queued simulate replications
// from loaded peers:
//
//	wsserved -addr :8080 -self http://127.0.0.1:8080 \
//	  -peers http://127.0.0.1:8081,http://127.0.0.1:8082
//
// A replica that loses every peer degrades to standalone serving (visible
// on /readyz and the wsserved_cluster_standalone gauge) and keeps
// answering everything locally.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

// run returns the process exit code instead of calling os.Exit so that
// deferred cleanups always execute and tests can drive it directly.
func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "scheduler pool workers (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 512, "result-cache entries")
	queue := flag.Int("queue", 16, "simulate admission slots (excess requests get 429)")
	deadline := flag.Duration("deadline", 60*time.Second, "per-request simulate deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	logFormat := flag.String("log", "text", "request log format: text, json, off")

	// HTTP server timeouts. WriteTimeout covers the whole handler in
	// net/http, so its default must exceed the simulate deadline or long
	// simulations would be cut mid-response; the streaming route instead
	// re-arms a per-write deadline (-stream-write-timeout) and is the reason
	// WriteTimeout cannot be tight.
	readTimeout := flag.Duration("read-timeout", 30*time.Second,
		"max time to read a request, header included (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 90*time.Second,
		"max time from end of request header to end of response (0 = none); must exceed -deadline")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second,
		"max keep-alive idle time per connection (0 = none)")
	streamWriteTimeout := flag.Duration("stream-write-timeout", 10*time.Second,
		"per-write progress deadline on streaming responses")

	// Circuit breaker on /v1/simulate.
	brkThreshold := flag.Float64("breaker.threshold", 0.5,
		"failure rate over the window that opens the simulate breaker")
	brkWindow := flag.Int("breaker.window", 20, "simulate breaker sliding-window size")
	brkMinSamples := flag.Int("breaker.min-samples", 10,
		"outcomes required in the window before the breaker may open")
	brkCooldown := flag.Duration("breaker.cooldown", 5*time.Second,
		"open-state hold time before a half-open probe")

	// Cluster membership (off unless -peers is set; see README "Cluster
	// Operations").
	self := flag.String("self", "", "this replica's advertised base URL (required with -peers)")
	peers := flag.String("peers", "", "comma-separated peer base URLs (static membership)")
	gossip := flag.Duration("cluster.gossip", 500*time.Millisecond, "peer load-gossip interval")
	stealBatch := flag.Int("cluster.steal-batch", 4, "max replications leased per steal")
	leaseTTL := flag.Duration("cluster.lease-ttl", 10*time.Second,
		"steal-lease TTL; expired leases are reclaimed and re-run locally")
	hedge := flag.Duration("cluster.hedge", 75*time.Millisecond,
		"delay before hedging a steal probe to the second-best victim")
	rpcTimeout := flag.Duration("cluster.rpc-timeout", 2*time.Second, "per-RPC deadline for peer calls")
	retryBase := flag.Duration("cluster.retry.base", 50*time.Millisecond,
		"base delay of the jittered exponential completion-retry schedule")
	retryAttempts := flag.Int("cluster.retry.attempts", 3, "completion POST attempts before abandoning")

	// Deterministic fault injection (self-test only; inert at defaults).
	chaosSeed := flag.Uint64("chaos.seed", 0, "chaos decision-stream seed")
	chaosPLatency := flag.Float64("chaos.p.latency", 0, "per-probe latency-fault probability")
	chaosPError := flag.Float64("chaos.p.error", 0, "per-probe error-fault probability")
	chaosPPanic := flag.Float64("chaos.p.panic", 0, "per-probe panic-fault probability")
	chaosPPerturb := flag.Float64("chaos.p.perturb", 0, "per-probe numeric-perturbation probability")
	chaosPPartition := flag.Float64("chaos.p.partition", 0, "per-RPC network-partition probability (cluster links)")
	chaosLatency := flag.Duration("chaos.latency", 5*time.Millisecond, "injected latency per fault")
	flag.Parse()

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		logger = slog.New(slog.DiscardHandler)
	default:
		fmt.Fprintf(os.Stderr, "wsserved: unknown log format %q\n", *logFormat)
		return 2
	}

	// The injector stays nil unless at least one probability is set, so the
	// default daemon carries zero chaos machinery on its hot paths.
	var inj *chaos.Injector
	if *chaosPLatency > 0 || *chaosPError > 0 || *chaosPPanic > 0 || *chaosPPerturb > 0 || *chaosPPartition > 0 {
		inj = chaos.New(chaos.Config{
			Seed:       *chaosSeed,
			PLatency:   *chaosPLatency,
			PError:     *chaosPError,
			PPanic:     *chaosPPanic,
			PPerturb:   *chaosPPerturb,
			PPartition: *chaosPPartition,
			Latency:    *chaosLatency,
		})
		logger.Warn("chaos injection enabled",
			"seed", *chaosSeed,
			"p_latency", *chaosPLatency, "p_error", *chaosPError,
			"p_panic", *chaosPPanic, "p_perturb", *chaosPPerturb,
			"p_partition", *chaosPPartition)
	}

	// In cluster mode the pool is created here and shared between the
	// server (local simulate traffic) and the node (stolen replications);
	// it outlives both and is closed last.
	var (
		pool *sched.Pool
		node *cluster.Node
	)
	if *peers != "" {
		if *self == "" {
			fmt.Fprintln(os.Stderr, "wsserved: -peers requires -self (this replica's advertised URL)")
			return 2
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		pool = sched.New(*workers)
		defer pool.Close()
		var err error
		node, err = cluster.New(cluster.Config{
			Self:           *self,
			Peers:          peerList,
			Pool:           pool,
			GossipInterval: *gossip,
			StealBatch:     *stealBatch,
			LeaseTTL:       *leaseTTL,
			HedgeDelay:     *hedge,
			RPCTimeout:     *rpcTimeout,
			Retry:          cluster.Backoff{Base: *retryBase, Attempts: *retryAttempts},
			Chaos:          inj,
			Logger:         logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wsserved:", err)
			return 2
		}
		logger.Info("cluster membership configured", "self", *self, "peers", len(peerList))
	}

	srv := serve.New(serve.Config{
		Pool:               pool,
		Workers:            *workers,
		CacheEntries:       *cache,
		QueueDepth:         *queue,
		SimDeadline:        *deadline,
		StreamWriteTimeout: *streamWriteTimeout,
		Logger:             logger,
		Chaos:              inj,
		BreakerWindow:      *brkWindow,
		BreakerThreshold:   *brkThreshold,
		BreakerMinSamples:  *brkMinSamples,
		BreakerCooldown:    *brkCooldown,
		Cluster:            node,
	})
	defer srv.Close()
	if node != nil {
		defer node.Close() // LIFO: node stops before the server and pool go away
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsserved:", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	if *writeTimeout > 0 && *writeTimeout <= *deadline {
		logger.Warn("write-timeout does not exceed the simulate deadline; long simulations may be cut off",
			"write_timeout", writeTimeout.String(), "deadline", deadline.String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String())
	if node != nil {
		node.Start() // after the listener, so peers' first polls can land
	}

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "wsserved:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop advertising readiness, then drain.
	logger.Info("shutting down", "drain", drain.String())
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "wsserved: shutdown:", err)
		return 1
	}
	logger.Info("drained")
	return 0
}
