// Command wscheck cross-validates the repository's three model substrates
// — closed forms, the mean-field fixed-point/ODE solver, and the finite-n
// simulator — over the experiments variant registry, using TOST
// equivalence tests at documented tolerances (see README "Validation").
//
// Usage:
//
//	wscheck -all                 # full suite (variants + families), default scale
//	wscheck -all -quick          # CI smoke scale
//	wscheck -model simple,hetero # a subset
//	wscheck -model crossover     # a check family (stealing vs sharing by SCV)
//	wscheck -all -json -out report.json
//	wscheck -list                # print registered variant and family names
//
// Exit status: 0 when every check passes, 1 when any check fails,
// 2 on usage or configuration errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/validate"
)

func main() {
	os.Exit(run())
}

// run returns the process exit code instead of calling os.Exit so that
// deferred cleanups always execute and tests can drive it directly.
func run() int {
	all := flag.Bool("all", false, "validate every registered variant")
	model := flag.String("model", "", "comma-separated variant names to validate")
	list := flag.Bool("list", false, "print the registered variant names and exit")
	quick := flag.Bool("quick", false, "CI smoke scale (smaller n-grid, shorter horizon, wider margins)")
	jsonFlag := flag.Bool("json", false, "emit the report as JSON")
	out := flag.String("out", "", "also write the JSON report to this file")
	seed := flag.Uint64("seed", 0, "base random seed (0 = default)")
	reps := flag.Int("reps", 0, "replications per cell (0 = default)")
	ns := flag.String("ns", "", "comma-separated ascending system sizes (empty = default)")
	horizon := flag.Float64("horizon", 0, "simulated time span per replication (0 = default)")
	warmup := flag.Float64("warmup", 0, "discarded prefix of each replication (0 = default)")
	margin := flag.Float64("margin", 0, "relative TOST margin for E[T] (0 = default)")
	rateMargin := flag.Float64("rate-margin", 0, "absolute TOST margin for throughput/utilization (0 = default)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, name := range experiments.VariantNames() {
			fmt.Println(name)
		}
		for _, name := range validate.FamilyNames() {
			fmt.Println(name)
		}
		return 0
	}

	variants, families, err := selectVariants(*all, *model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wscheck:", err)
		return 2
	}

	cfg := validate.Config{}
	if *quick {
		cfg = validate.Quick()
	}
	cfg.Workers = *workers
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *reps != 0 {
		cfg.Reps = *reps
	}
	if *horizon != 0 {
		cfg.Horizon = *horizon
	}
	if *warmup != 0 {
		cfg.Warmup = *warmup
	}
	if *margin != 0 {
		cfg.RelMargin = *margin
	}
	if *rateMargin != 0 {
		cfg.RateMargin = *rateMargin
	}
	if *ns != "" {
		if cfg.Ns, err = parseInts(*ns); err != nil {
			fmt.Fprintln(os.Stderr, "wscheck: -ns:", err)
			return 2
		}
	}

	start := time.Now()
	rep, err := validate.Run(cfg, variants, families...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wscheck:", err)
		return 2
	}
	rep.WallSeconds = time.Since(start).Seconds()

	if *out != "" {
		f, err := os.Create(*out)
		if err == nil {
			err = cliutil.WriteJSON(f, rep)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wscheck: writing report:", err)
			return 2
		}
	}
	if *jsonFlag {
		if err := cliutil.WriteJSON(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "wscheck:", err)
			return 2
		}
	} else {
		rep.Render(os.Stdout)
	}
	if !rep.OK {
		return 1
	}
	return 0
}

// selectVariants resolves the -all/-model flags against the variant
// registry and the validate check families; family names select like
// variant names.
func selectVariants(all bool, models string) ([]experiments.Variant, []validate.Family, error) {
	if all == (models != "") {
		return nil, nil, fmt.Errorf("pass exactly one of -all or -model (see -list for names)")
	}
	if all {
		return experiments.Variants(), validate.Families(), nil
	}
	var vs []experiments.Variant
	var fs []validate.Family
	for _, name := range strings.Split(models, ",") {
		name = strings.TrimSpace(name)
		if v, ok := experiments.VariantByName(name); ok {
			vs = append(vs, v)
			continue
		}
		if f, ok := validate.FamilyByName(name); ok {
			fs = append(fs, f)
			continue
		}
		return nil, nil, fmt.Errorf("unknown variant %q (see -list)", name)
	}
	return vs, fs, nil
}

// parseInts parses a comma-separated integer list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
