// Command wsode integrates a mean-field model's differential equations from
// the empty system and prints the trajectory as CSV — time, expected time in
// system (via Little's law once warm), mean tasks per processor, and the
// distance to the fixed point. Useful for studying convergence behavior
// (Section 4 of the paper).
//
// Example:
//
//	wsode -model simple -lambda 0.9 -span 200 -dt 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asciiplot"
	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run returns the process exit code instead of calling os.Exit so that
// deferred cleanups always execute and tests can drive it directly.
func run() int {
	model := flag.String("model", "simple", "model: nosteal, simple, threshold, choices")
	lambda := flag.Float64("lambda", 0.9, "arrival rate")
	tFlag := flag.Int("T", 2, "victim threshold")
	dFlag := flag.Int("d", 2, "victim choices")
	span := flag.Float64("span", 200, "integration span")
	dt := flag.Float64("dt", 1, "output sampling interval")
	plot := flag.Bool("plot", false, "render an ASCII chart of the mean load instead of CSV")
	metricsFlag := flag.Bool("metrics", false, "print convergence metrics of the trajectory instead of CSV")
	jsonFlag := flag.Bool("json", false, "emit the trajectory (and metrics) as JSON")
	flag.Parse()

	spec := experiments.ODESpec{
		Model:  *model,
		Lambda: *lambda,
		T:      *tFlag,
		D:      *dFlag,
		Span:   *span,
		Dt:     *dt,
	}
	rep, err := spec.Integrate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsode:", err)
		return 1
	}
	times, loads, dists := rep.Times, rep.Loads, rep.Distances

	if *plot {
		chart, err := asciiplot.Render(asciiplot.Options{
			Title:  fmt.Sprintf("%s: mean load from empty (fixed point %.4f)", rep.Model, rep.FixedPoint),
			Width:  72,
			Height: 18,
		}, asciiplot.Series{Name: "mean tasks per processor", Xs: times, Ys: loads})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wsode:", err)
			return 1
		}
		fmt.Print(chart)
		return 0
	}

	if *jsonFlag {
		if err := cliutil.WriteJSON(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "wsode:", err)
			return 1
		}
		return 0
	}
	if *metricsFlag {
		fmt.Printf("model:             %s\n", rep.Model)
		fmt.Printf("fixed point E[L]:  %.6f\n", rep.FixedPoint)
		fmt.Printf("final load:        %.6f  (at t = %.1f)\n", rep.FinalLoad, times[len(times)-1])
		fmt.Printf("final L1 distance: %.3e\n", rep.FinalDistance)
		if rep.SettleTime >= 0 {
			fmt.Printf("settle time (1%%):  %.1f\n", rep.SettleTime)
		} else {
			fmt.Printf("settle time (1%%):  not reached within span %.1f\n", *span)
		}
		return 0
	}
	fmt.Println("t,mean_tasks,sojourn_estimate,l1_distance_to_fixed_point")
	for i := range times {
		fmt.Printf("%.3f,%.6f,%.6f,%.6e\n",
			times[i], loads[i], loads[i] / *lambda, dists[i])
	}
	return 0
}
