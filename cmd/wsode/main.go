// Command wsode integrates a mean-field model's differential equations from
// the empty system and prints the trajectory as CSV — time, expected time in
// system (via Little's law once warm), mean tasks per processor, and the
// distance to the fixed point. Useful for studying convergence behavior
// (Section 4 of the paper).
//
// Example:
//
//	wsode -model simple -lambda 0.9 -span 200 -dt 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asciiplot"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/meanfield"
	"repro/internal/numeric"
	"repro/internal/ode"
)

func main() {
	os.Exit(run())
}

// run returns the process exit code instead of calling os.Exit so that
// deferred cleanups always execute and tests can drive it directly.
func run() int {
	model := flag.String("model", "simple", "model: nosteal, simple, threshold, choices")
	lambda := flag.Float64("lambda", 0.9, "arrival rate")
	tFlag := flag.Int("T", 2, "victim threshold")
	dFlag := flag.Int("d", 2, "victim choices")
	span := flag.Float64("span", 200, "integration span")
	dt := flag.Float64("dt", 1, "output sampling interval")
	plot := flag.Bool("plot", false, "render an ASCII chart of the mean load instead of CSV")
	metricsFlag := flag.Bool("metrics", false, "print convergence metrics of the trajectory instead of CSV")
	jsonFlag := flag.Bool("json", false, "emit the trajectory (and metrics) as JSON")
	flag.Parse()

	var m core.Model
	switch *model {
	case "nosteal":
		m = meanfield.NewNoSteal(*lambda)
	case "simple":
		m = meanfield.NewSimpleWS(*lambda)
	case "threshold":
		m = meanfield.NewThreshold(*lambda, *tFlag)
	case "choices":
		m = meanfield.NewChoices(*lambda, *tFlag, *dFlag)
	default:
		fmt.Fprintf(os.Stderr, "wsode: unknown model %q\n", *model)
		return 2
	}

	fp, err := meanfield.Solve(m, meanfield.SolveOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsode:", err)
		return 1
	}

	x := m.Initial()
	var times, loads, dists []float64
	next := 0.0
	h := *dt
	if h > 0.05 {
		h = 0.05
	}
	ode.SolveObserved(m.Derivs, x, *span, h, func(t float64, y []float64) bool {
		if t+1e-12 < next && t < *span {
			return true
		}
		next = t + *dt
		times = append(times, t)
		loads = append(loads, m.MeanTasks(y))
		dists = append(dists, numeric.Dist1(y, fp.State))
		return true
	})

	if *plot {
		chart, err := asciiplot.Render(asciiplot.Options{
			Title:  fmt.Sprintf("%s: mean load from empty (fixed point %.4f)", m.Name(), fp.MeanTasks()),
			Width:  72,
			Height: 18,
		}, asciiplot.Series{Name: "mean tasks per processor", Xs: times, Ys: loads})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wsode:", err)
			return 1
		}
		fmt.Print(chart)
		return 0
	}

	// Convergence metrics: when the trajectory first comes within 1% (in
	// L1 distance relative to the fixed point's mean) and its state at the
	// end of the span.
	settle := -1.0
	tol := 0.01 * fp.MeanTasks()
	for i := range times {
		if dists[i] <= tol {
			settle = times[i]
			break
		}
	}
	if *jsonFlag {
		out := struct {
			Model         string    `json:"model"`
			Lambda        float64   `json:"lambda"`
			FixedPoint    float64   `json:"fixed_point_mean_tasks"`
			SettleTime    float64   `json:"settle_time"`
			FinalLoad     float64   `json:"final_load"`
			FinalDistance float64   `json:"final_distance"`
			Times         []float64 `json:"times"`
			Loads         []float64 `json:"loads"`
			Distances     []float64 `json:"distances"`
		}{m.Name(), *lambda, fp.MeanTasks(), settle,
			loads[len(loads)-1], dists[len(dists)-1], times, loads, dists}
		if err := cliutil.WriteJSON(os.Stdout, out); err != nil {
			fmt.Fprintln(os.Stderr, "wsode:", err)
			return 1
		}
		return 0
	}
	if *metricsFlag {
		fmt.Printf("model:             %s\n", m.Name())
		fmt.Printf("fixed point E[L]:  %.6f\n", fp.MeanTasks())
		fmt.Printf("final load:        %.6f  (at t = %.1f)\n", loads[len(loads)-1], times[len(times)-1])
		fmt.Printf("final L1 distance: %.3e\n", dists[len(dists)-1])
		if settle >= 0 {
			fmt.Printf("settle time (1%%):  %.1f\n", settle)
		} else {
			fmt.Printf("settle time (1%%):  not reached within span %.1f\n", *span)
		}
		return 0
	}
	fmt.Println("t,mean_tasks,sojourn_estimate,l1_distance_to_fixed_point")
	for i := range times {
		fmt.Printf("%.3f,%.6f,%.6f,%.6e\n",
			times[i], loads[i], loads[i]/m.ArrivalRate(), dists[i])
	}
	return 0
}
