// Command wstables regenerates the paper's evaluation tables (and the
// extension studies) by running the discrete-event simulator against the
// mean-field fixed-point estimates.
//
// Usage:
//
//	wstables [-table all|1|2|3|4|tails|threshold|repeated|multisteal|
//	          preemptive|rebalance|hetero|static|stability]
//	         [-full] [-reps N] [-horizon T] [-workers N] [-csv] [-json]
//	         [-metrics] [-cpuprofile FILE] [-memprofile FILE]
//
// By default a reduced scale runs in seconds; -full reproduces the paper's
// 10 × 100,000-second simulations for 16–128 processors (minutes).
//
// All requested tables share one global experiment scheduler: every
// (table, cell, replication) work item is flattened onto -workers pool
// workers (GOMAXPROCS by default), so `-table all` keeps every core busy
// instead of running cells one after another. The output is byte-identical
// for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/table"
)

func main() {
	os.Exit(run())
}

// run holds the whole program so that deferred cleanups — most importantly
// the profile flushes — execute on every exit path; main's os.Exit would
// skip them.
func run() (code int) {
	which := flag.String("table", "all", "which table to produce: all, 1, 2, 3, 4, tails, threshold, repeated, multisteal, preemptive, rebalance, hetero, static, stability, convergence, transient, empirical-tails")
	full := flag.Bool("full", false, "use the paper's full simulation scale (10 reps × 100k seconds, n up to 128)")
	reps := flag.Int("reps", 0, "override the number of replications")
	horizon := flag.Float64("horizon", 0, "override the simulated horizon")
	seed := flag.Uint64("seed", 1998, "random seed")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonFlag := flag.Bool("json", false, "emit JSON instead of aligned text")
	metricsFlag := flag.Bool("metrics", false, "append the simulation-metrics table (λ = 0.9)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	stopCPU, err := cliutil.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wstables:", err)
		return 1
	}
	defer func() {
		stopCPU()
		if err := cliutil.WriteMemProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "wstables:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	sc := experiments.QuickScale
	if *full {
		sc = experiments.PaperScale
	}
	sc.Seed = *seed
	if *reps > 0 {
		sc.Reps = *reps
	}
	if *horizon > 0 {
		sc.Horizon = *horizon
		sc.Warmup = *horizon / 10
	}

	// One scheduler for everything this invocation runs: all cells of all
	// tables interleave across its workers.
	pool := sched.New(*workers)
	defer pool.Close()
	sc.Pool = pool

	emit := func(t *table.Table) error {
		var err error
		switch {
		case *jsonFlag:
			err = t.WriteJSON(os.Stdout)
		case *csv:
			err = t.WriteCSV(os.Stdout)
		default:
			err = t.WriteText(os.Stdout)
		}
		if err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	builders := map[string]func() *table.Table{
		"1":          func() *table.Table { return experiments.Table1(sc) },
		"2":          func() *table.Table { return experiments.Table2(sc) },
		"3":          func() *table.Table { return experiments.Table3(sc) },
		"4":          func() *table.Table { return experiments.Table4(sc) },
		"tails":      func() *table.Table { return experiments.TailDecay(0.9) },
		"threshold":  func() *table.Table { return experiments.ThresholdSweep(0.9, []int{2, 3, 4, 5, 6, 8}) },
		"repeated":   func() *table.Table { return experiments.RepeatedSweep(0.9, 2, []float64{0, 0.5, 1, 2, 4, 8, 16}) },
		"multisteal": func() *table.Table { return experiments.MultiStealSweep(0.9, 8) },
		"preemptive": func() *table.Table { return experiments.PreemptiveSweep(0.9, []int{0, 1, 2, 3}, 5) },
		"rebalance":  func() *table.Table { return experiments.RebalanceStudy(0.9, []float64{0.5, 1, 2, 4}, sc) },
		"hetero":     func() *table.Table { return experiments.HeteroStudy(sc) },
		"static":     func() *table.Table { return experiments.StaticDrain(8, sc) },
		"stability":  func() *table.Table { return experiments.StabilityStudy([]float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) },
		"convergence": func() *table.Table {
			return experiments.ConvergenceInN(0.9, []int{8, 16, 32, 64, 128}, sc)
		},
		"transient": func() *table.Table {
			return experiments.TransientTable(0.9, 256, 60, 2, sc.Reps, sc.Seed)
		},
		"empirical-tails": func() *table.Table { return experiments.EmpiricalTails(0.9, 12, sc) },
		"relaxation":      func() *table.Table { return experiments.RelaxationStudy([]float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) },
		"latency":         func() *table.Table { return experiments.TailLatency(0.9, sc) },
	}
	order := []string{"1", "2", "3", "4", "tails", "threshold", "repeated", "multisteal", "preemptive", "rebalance", "hetero", "static", "stability", "convergence", "transient", "empirical-tails", "relaxation", "latency"}

	switch *which {
	case "all":
		// Build every table concurrently — each builder enqueues its cells
		// on the shared pool and assembles its rows — then emit in the
		// canonical order.
		tables := make([]*table.Table, len(order))
		var wg sync.WaitGroup
		for i, k := range order {
			i, k := i, k
			wg.Add(1)
			go func() {
				defer wg.Done()
				tables[i] = builders[k]()
			}()
		}
		wg.Wait()
		for _, t := range tables {
			if err := emit(t); err != nil {
				fmt.Fprintln(os.Stderr, "wstables:", err)
				return 1
			}
		}
	default:
		b, ok := builders[*which]
		if !ok {
			fmt.Fprintf(os.Stderr, "wstables: unknown table %q (options: all, %s)\n", *which, strings.Join(order, ", "))
			return 2
		}
		if err := emit(b()); err != nil {
			fmt.Fprintln(os.Stderr, "wstables:", err)
			return 1
		}
	}
	if *metricsFlag {
		if err := emit(experiments.MetricsTable(0.9, sc)); err != nil {
			fmt.Fprintln(os.Stderr, "wstables:", err)
			return 1
		}
	}
	return 0
}
