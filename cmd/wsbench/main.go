// Command wsbench measures the repository's performance numbers and writes
// them to a machine-readable JSON file (BENCH_PR3.json at the repo root, by
// convention), so the perf trajectory across PRs is recorded next to the
// code rather than in commit messages.
//
// It reports two families of numbers:
//
//   - Engine throughput: ns per simulated event and heap allocations per
//     event for steady-state runs on a warmed (reused) engine — the numbers
//     the zero-alloc discipline in internal/sim pins.
//   - Experiment wall times: how long the paper's Tables 1–4 take at
//     QuickScale with 1 worker versus GOMAXPROCS workers on the global
//     scheduler, individually and with all four sharing one pool.
//
// It can also act as a regression gate: -compare OLD.json re-reads a
// committed baseline report and fails (exit 1) if any throughput config
// regressed by more than -maxregress (default 25%) in ns/event. Config
// matching is by name, so baselines from PRs with fewer configs still
// gate the ones they have. The generous threshold absorbs the run-to-run
// jitter of shared CI machines; catching a 2x cliff is the goal, not
// detecting single-digit drift.
//
// Usage:
//
//	wsbench [-out BENCH_PR10.json] [-runs 6] [-horizon 2000]
//	wsbench -tables=false -compare BENCH_PR8.json [-maxregress 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/table"
)

func main() {
	os.Exit(run())
}

// Throughput is one steady-state engine measurement.
type Throughput struct {
	Name           string  `json:"name"`
	Runs           int     `json:"runs"`
	Events         int64   `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	AllocsPerRun   float64 `json:"allocs_per_run"`
}

// TableTiming is the wall time of one table builder at two worker counts.
type TableTiming struct {
	Table      string  `json:"table"`
	Workers1   float64 `json:"workers_1_sec"`
	WorkersMax float64 `json:"workers_max_sec"`
	Speedup    float64 `json:"speedup"`
}

// Report is the full BENCH file schema.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Horizon    float64 `json:"throughput_horizon"`

	Throughput []Throughput  `json:"throughput"`
	Tables     []TableTiming `json:"tables"`
	// TablesConcurrent is the wall time of building Tables 1–4 at once on
	// one shared GOMAXPROCS pool (the `wstables -table all` path) versus
	// the sum of the 1-worker times.
	TablesConcurrent float64 `json:"tables_concurrent_sec"`
	TablesSequential float64 `json:"tables_sequential_sec"`
	OverallSpeedup   float64 `json:"overall_speedup"`
}

func run() int {
	out := flag.String("out", "BENCH_PR10.json", "output JSON file (- for stdout)")
	runs := flag.Int("runs", 6, "measured steady-state runs per throughput config")
	horizon := flag.Float64("horizon", 2_000, "simulated horizon per throughput run")
	tables := flag.Bool("tables", true, "also time Tables 1-4 at QuickScale (the slow part)")
	compare := flag.String("compare", "", "baseline BENCH_*.json; exit 1 if ns/event regresses past -maxregress")
	maxRegress := flag.Float64("maxregress", 0.25, "allowed fractional ns/event regression against -compare")
	flag.Parse()

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Horizon:    *horizon,
	}

	base := sim.Options{
		N:       128,
		Lambda:  0.9,
		Service: dist.NewExponential(1),
		Policy:  sim.PolicySteal,
		T:       2,
		Horizon: *horizon,
		Warmup:  0,
		Seed:    1,
	}
	configs := []struct {
		name string
		mod  func(*sim.Options)
	}{
		{"steal K=1", func(o *sim.Options) {}},
		{"steal half", func(o *sim.Options) { o.Half = true }},
		{"two choices", func(o *sim.Options) { o.D = 2 }},
		{"no stealing", func(o *sim.Options) { o.Policy = sim.PolicyNone; o.T = 0 }},
	}
	for _, c := range configs {
		o := base
		c.mod(&o)
		t, err := measureThroughput(c.name, o, *runs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wsbench:", err)
			return 1
		}
		rep.Throughput = append(rep.Throughput, t)
	}

	if *tables {
		timeTables(&rep)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsbench:", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wsbench:", err)
			return 1
		}
	}

	for _, t := range rep.Throughput {
		fmt.Printf("%-12s  %7.1f ns/event  %8.5f allocs/event  (%d events)\n",
			t.Name, t.NsPerEvent, t.AllocsPerEvent, t.Events)
	}
	for _, t := range rep.Tables {
		fmt.Printf("table %-2s      %6.2fs @ 1 worker   %6.2fs @ %d workers  (%.2fx)\n",
			t.Table, t.Workers1, t.WorkersMax, rep.GOMAXPROCS, t.Speedup)
	}
	if *tables {
		fmt.Printf("tables 1-4    %6.2fs sequential   %6.2fs shared pool    (%.2fx, %d CPUs)\n",
			rep.TablesSequential, rep.TablesConcurrent, rep.OverallSpeedup, rep.NumCPU)
	}
	if *out != "-" {
		fmt.Printf("wrote %s\n", *out)
	}
	if *compare != "" {
		if err := compareBaseline(&rep, *compare, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "wsbench:", err)
			return 1
		}
	}
	return 0
}

// compareBaseline checks the fresh throughput numbers against a committed
// baseline report and errors if any config sharing a name regressed in
// ns/event beyond the allowed fraction. Configs present on only one side
// are reported and skipped — the gate compares what both reports measured.
func compareBaseline(rep *Report, path string, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	old := make(map[string]Throughput, len(base.Throughput))
	for _, t := range base.Throughput {
		old[t.Name] = t
	}
	fmt.Printf("\nvs %s (max allowed regression %+.0f%%):\n", path, 100*maxRegress)
	var failed []string
	for _, t := range rep.Throughput {
		b, ok := old[t.Name]
		if !ok {
			fmt.Printf("%-12s  %7.1f ns/event  (no baseline, skipped)\n", t.Name, t.NsPerEvent)
			continue
		}
		delta := t.NsPerEvent/b.NsPerEvent - 1
		verdict := "ok"
		if delta > maxRegress {
			verdict = "REGRESSION"
			failed = append(failed, t.Name)
		}
		fmt.Printf("%-12s  %7.1f -> %6.1f ns/event  %+6.1f%%  %s\n",
			t.Name, b.NsPerEvent, t.NsPerEvent, 100*delta, verdict)
	}
	if len(failed) > 0 {
		return fmt.Errorf("ns/event regressed past %.0f%% on: %v", 100*maxRegress, failed)
	}
	return nil
}

// timeTables fills in the experiment wall-time section of the report.
func timeTables(rep *Report) {
	sc := experiments.QuickScale
	builders := []struct {
		name  string
		build func(experiments.Scale) *table.Table
	}{
		{"1", experiments.Table1},
		{"2", experiments.Table2},
		{"3", experiments.Table3},
		{"4", experiments.Table4},
	}
	var seq float64
	for _, b := range builders {
		t1 := timeTable(b.build, sc, 1)
		tn := timeTable(b.build, sc, 0)
		seq += t1
		rep.Tables = append(rep.Tables, TableTiming{
			Table:      b.name,
			Workers1:   t1,
			WorkersMax: tn,
			Speedup:    t1 / tn,
		})
	}
	rep.TablesSequential = seq

	// All four tables concurrently on one shared pool, as `wstables -table
	// all` runs them.
	pool := sched.New(0)
	scShared := sc
	scShared.Pool = pool
	start := time.Now()
	var wg sync.WaitGroup
	for _, b := range builders {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.build(scShared)
		}()
	}
	wg.Wait()
	pool.Close()
	rep.TablesConcurrent = time.Since(start).Seconds()
	rep.OverallSpeedup = rep.TablesSequential / rep.TablesConcurrent
}

// measureThroughput runs opts on one warmed Runner `runs` times and reports
// per-event cost. The first run (which grows the engine's buffers) is
// excluded, so the numbers reflect the steady reuse path that replications
// 2..R of every cell take.
func measureThroughput(name string, o sim.Options, runs int) (Throughput, error) {
	if err := (sim.Replication{Reps: 1}).Validate(&o); err != nil {
		return Throughput{}, err
	}
	var r sim.Runner
	r.RunRep(o, 0) // warm: allocate engine, grow buffers

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var events int64
	for i := 0; i < runs; i++ {
		res := r.RunRep(o, i+1)
		events += res.Metrics.Events
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	allocs := float64(after.Mallocs - before.Mallocs)
	bytes := float64(after.TotalAlloc - before.TotalAlloc)
	return Throughput{
		Name:           name,
		Runs:           runs,
		Events:         events,
		NsPerEvent:     float64(elapsed.Nanoseconds()) / float64(events),
		AllocsPerEvent: allocs / float64(events),
		BytesPerEvent:  bytes / float64(events),
		AllocsPerRun:   allocs / float64(runs),
	}, nil
}

// timeTable builds one table with a private pool of the given size and
// returns the wall time in seconds.
func timeTable(build func(experiments.Scale) *table.Table, sc experiments.Scale, workers int) float64 {
	sc.Workers = workers
	sc.Pool = nil
	start := time.Now()
	build(sc)
	return time.Since(start).Seconds()
}
