// Command wssim runs one work-stealing simulation configuration and prints
// its measurements with 95% confidence intervals over replications.
//
// Examples:
//
//	wssim -n 128 -lambda 0.9 -policy steal -T 2
//	wssim -n 128 -lambda 0.9 -policy steal -T 2 -d 2
//	wssim -n 128 -lambda 0.8 -policy steal -T 4 -transfer 0.25
//	wssim -n 64 -policy steal -T 2 -retry 10 -initial 8    (static drain)
//	wssim -n 64 -lambda 0.9 -policy rebalance -rebalance 2
//	wssim -n 64 -lambda 0.9 -policy steal -T 2 -service const
//	wssim -n 64 -lambda 0.9 -T 2 -service h2 -scv 4     (bursty task sizes)
//	wssim -n 64 -lambda 0.9 -T 2 -service pareto -shape 1.5 -ratio 1000
//	wssim -n 64 -T 2 -arrivals mmpp -mmpp-rates 1.6,0.1 -mmpp-switch 0.5,0.5
//	wssim -n 64 -T 2 -trace arrivals.csv                (deterministic replay)
//	wssim -engine hybrid -n 1000000 -lambda 0.9 -T 2    (fluid bulk + tracked sample)
//	wssim -engine fluid -n 1000000 -lambda 0.9 -T 2     (pure mean-field integration)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

// run holds the whole program so that deferred cleanups — most importantly
// the profile flushes — execute on every exit path; main's os.Exit would
// skip them.
func run() (code int) {
	engine := flag.String("engine", "des", "simulation engine: des, fluid, hybrid")
	tracked := flag.Int("tracked", 0, "hybrid tracked sample size (0 = min(256, n))")
	n := flag.Int("n", 128, "number of processors")
	lambda := flag.Float64("lambda", 0, "external per-processor arrival rate")
	lambdaInt := flag.Float64("lambda-int", 0, "internal spawn rate while busy")
	policy := flag.String("policy", "steal", "policy: none, steal, rebalance")
	service := flag.String("service", "exp", "service distribution: "+strings.Join(workload.ServiceDists, ", "))
	stages := flag.Int("stages", 10, "stages for -service erlang")
	scv := flag.Float64("scv", 0, "squared coefficient of variation for -service h2 (0 = default)")
	shape := flag.Float64("shape", 0, "tail exponent for -service pareto (0 = default)")
	ratio := flag.Float64("ratio", 0, "hi/lo bound ratio for -service pareto (0 = default)")
	arrivals := flag.String("arrivals", "", "arrival model: "+strings.Join(workload.ArrivalKinds, ", ")+" (empty = poisson)")
	mmppRates := flag.String("mmpp-rates", "", "comma-separated per-processor phase rates for -arrivals mmpp")
	mmppSwitch := flag.String("mmpp-switch", "", "comma-separated phase-exit rates for -arrivals mmpp")
	trace := flag.String("trace", "", "arrival trace file (JSON or CSV) for -arrivals trace")
	tFlag := flag.Int("T", 2, "victim threshold")
	bFlag := flag.Int("B", 0, "preemptive steal-begin level")
	dFlag := flag.Int("d", 1, "victim choices per attempt")
	kFlag := flag.Int("k", 1, "tasks per steal")
	half := flag.Bool("half", false, "steal half the victim's queue per success")
	retry := flag.Float64("retry", 0, "retry rate for idle thieves")
	transfer := flag.Float64("transfer", 0, "transfer completion rate (0 = instantaneous)")
	rebalance := flag.Float64("rebalance", 0, "rebalancing rate (policy rebalance)")
	initial := flag.Int("initial", 0, "initial tasks per processor (static runs)")
	horizon := flag.Float64("horizon", 100_000, "simulated time")
	warmup := flag.Float64("warmup", 10_000, "warmup time excluded from stats")
	reps := flag.Int("reps", 10, "independent replications")
	workers := flag.Int("workers", 0, "parallel replication workers (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "random seed")
	metricsFlag := flag.Bool("metrics", false, "report the observability metrics (utilization, steal rates, queue-length histogram)")
	qhist := flag.Int("qhist", 16, "queue-length histogram depth for -metrics")
	jsonFlag := flag.Bool("json", false, "emit results as JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	spec := workload.ServiceSpec{Dist: *service, Stages: *stages,
		SCV: *scv, Shape: *shape, Ratio: *ratio}
	svc, err := spec.Distribution()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wssim:", err)
		return 2
	}

	arrProc, err := arrivalProcess(*arrivals, *mmppRates, *mmppSwitch, *trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wssim:", err)
		return 2
	}

	pk, err := experiments.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wssim:", err)
		return 2
	}

	kind, err := sim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wssim:", err)
		return 2
	}
	if kind != sim.EngineDES {
		// The DES batch defaults (λ = 0 static, 10⁵-second horizon, 10
		// replications) either reject outright or waste work under the
		// scaled engines; swap in serving-sized defaults for any flag the
		// user did not set. Explicit flags always win.
		set := make(map[string]bool)
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["lambda"] && arrProc == nil {
			*lambda = 0.9
			fmt.Fprintf(os.Stderr, "wssim: -engine %s defaulting to -lambda 0.9\n", kind)
		}
		if !set["horizon"] {
			*horizon = 8000
		}
		if !set["warmup"] {
			*warmup = 1000
		}
		if !set["reps"] {
			*reps = 4
			if kind == sim.EngineFluid {
				*reps = 1 // the fluid trajectory is deterministic
			}
		}
	}
	if kind == sim.EngineHybrid && *tracked == 0 {
		// Mirror sim's normalize so the report can echo the effective value.
		*tracked = 256
		if *tracked > *n {
			*tracked = *n
		}
	}

	// Static runs drop the warmup by default.
	w := *warmup
	if *lambda == 0 && *initial > 0 {
		w = 0
	}
	opts := sim.Options{
		Engine:        kind,
		Tracked:       *tracked,
		N:             *n,
		Lambda:        *lambda,
		LambdaInt:     *lambdaInt,
		Service:       svc,
		Policy:        pk,
		T:             *tFlag,
		B:             *bFlag,
		D:             *dFlag,
		K:             *kFlag,
		Half:          *half,
		RetryRate:     *retry,
		TransferRate:  *transfer,
		RebalanceRate: *rebalance,
		InitialLoad:   *initial,
		Horizon:       *horizon,
		Warmup:        w,
		Seed:          *seed,
		Arrivals:      arrProc,
	}
	if *metricsFlag {
		opts.QueueHistDepth = *qhist
	}

	stopCPU, err := cliutil.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wssim:", err)
		return 1
	}
	defer func() {
		stopCPU()
		if err := cliutil.WriteMemProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "wssim:", err)
			if code == 0 {
				code = 1
			}
		}
	}()
	agg, err := sim.Replication{Reps: *reps, Workers: *workers}.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wssim:", err)
		return 1
	}

	arrName := ""
	if arrProc != nil {
		arrName = arrProc.Name()
	}
	if *jsonFlag {
		out := struct {
			Engine   string          `json:"engine"`
			Tracked  int             `json:"tracked,omitempty"`
			N        int             `json:"n"`
			Lambda   float64         `json:"lambda"`
			Policy   string          `json:"policy"`
			Service  string          `json:"service"`
			Arrivals string          `json:"arrivals,omitempty"`
			Reps     int             `json:"reps"`
			Horizon  float64         `json:"horizon"`
			Warmup   float64         `json:"warmup"`
			Sojourn  stats.Summary   `json:"sojourn"`
			Load     stats.Summary   `json:"load"`
			Drain    stats.Summary   `json:"drain"`
			Tails    []float64       `json:"tails,omitempty"`
			Metrics  metrics.Summary `json:"metrics"`
		}{kind.String(), *tracked, *n, *lambda, *policy, svc.String(), arrName, *reps, *horizon, w,
			agg.Sojourn, agg.Load, agg.Drain, agg.Tails, agg.Metrics}
		if err := cliutil.WriteJSON(os.Stdout, out); err != nil {
			fmt.Fprintln(os.Stderr, "wssim:", err)
			return 1
		}
		return 0
	}

	first := agg.Results[0]
	fmt.Printf("processors:       %d    service: %s    policy: %s\n", *n, svc, *policy)
	if arrName != "" {
		fmt.Printf("arrivals:         %s\n", arrName)
	}
	if kind != sim.EngineDES {
		fmt.Printf("engine:           %s", kind)
		if kind == sim.EngineHybrid {
			fmt.Printf("    tracked sample: %d of %d", *tracked, *n)
		}
		fmt.Println()
	}
	fmt.Printf("replications:     %d × horizon %.0f (warmup %.0f)\n", *reps, *horizon, w)
	if agg.Sojourn.N > 0 {
		fmt.Printf("time in system:   %s\n", agg.Sojourn)
	}
	fmt.Printf("tasks/processor:  %s\n", agg.Load)
	if agg.Drain.N > 0 {
		fmt.Printf("drain time:       %s\n", agg.Drain)
	}
	fmt.Printf("rep[0] detail:    arrived=%d completed=%d stealAttempts=%d stealSuccesses=%d rebalances=%d\n",
		first.Arrived, first.Completed, first.StealAttempts, first.StealSuccesses, first.Rebalances)

	if *metricsFlag {
		fmt.Println()
		if err := agg.Metrics.Table("Simulation metrics (95% CIs over replications)").WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wssim:", err)
			return 1
		}
		if ht := agg.Metrics.HistTable("Queue-length distribution (sampled)"); ht != nil {
			fmt.Println()
			if err := ht.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "wssim:", err)
				return 1
			}
		}
	}
	return 0
}

// arrivalProcess builds the arrival model from the workload flags. The kind
// is inferred when parameters imply it (-mmpp-rates → mmpp, -trace → trace);
// an empty result means the engine's native Poisson stream.
func arrivalProcess(kind, rates, switches, trace string) (workload.ArrivalProcess, error) {
	if kind == "" {
		switch {
		case trace != "":
			kind = "trace"
		case rates != "":
			kind = "mmpp"
		default:
			if switches != "" {
				return nil, fmt.Errorf("-mmpp-switch needs -arrivals mmpp")
			}
			return nil, nil
		}
	}
	spec := workload.ArrivalSpec{Kind: kind}
	var err error
	if rates != "" {
		if spec.Rates, err = parseFloats(rates); err != nil {
			return nil, fmt.Errorf("-mmpp-rates: %v", err)
		}
	}
	if switches != "" {
		if spec.Switch, err = parseFloats(switches); err != nil {
			return nil, fmt.Errorf("-mmpp-switch: %v", err)
		}
	}
	if trace != "" {
		if spec.Times, err = workload.LoadTrace(trace); err != nil {
			return nil, err
		}
	}
	return spec.Process()
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
