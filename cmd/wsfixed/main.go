// Command wsfixed computes the mean-field fixed point of any model in the
// repository and prints its key metrics and leading tail entries.
//
// Usage:
//
//	wsfixed -model simple -lambda 0.9
//	wsfixed -model threshold -lambda 0.9 -T 3
//	wsfixed -model preemptive -lambda 0.9 -B 1 -T 4
//	wsfixed -model repeated -lambda 0.9 -T 2 -r 4
//	wsfixed -model choices -lambda 0.9 -T 2 -d 2
//	wsfixed -model multisteal -lambda 0.9 -T 6 -k 3
//	wsfixed -model stages -lambda 0.9 -c 20
//	wsfixed -model transfer -lambda 0.9 -T 4 -r 0.25
//	wsfixed -model rebalance -lambda 0.9 -r 2
//	wsfixed -model nosteal -lambda 0.9
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/meanfield"
)

func main() {
	os.Exit(run())
}

// run returns the process exit code instead of calling os.Exit so that
// deferred cleanups always execute and tests can drive it directly.
func run() int {
	model := flag.String("model", "simple", "model: nosteal, simple, threshold, preemptive, repeated, choices, multisteal, stages, transfer, rebalance, stealhalf, spawning, repeated-transfer")
	lambda := flag.Float64("lambda", 0.9, "arrival rate λ in (0,1)")
	tFlag := flag.Int("T", 2, "victim threshold")
	bFlag := flag.Int("B", 0, "preemptive steal-begin level")
	dFlag := flag.Int("d", 2, "victim choices")
	kFlag := flag.Int("k", 2, "tasks per steal")
	cFlag := flag.Int("c", 10, "Erlang stages per task")
	rFlag := flag.Float64("r", 1, "rate parameter (retry, transfer, or rebalance rate)")
	raFlag := flag.Float64("ra", 1, "retry rate for -model repeated-transfer")
	liFlag := flag.Float64("li", 0.3, "internal spawn rate for -model spawning")
	tails := flag.Int("tails", 12, "how many tail entries to print")
	metricsFlag := flag.Bool("metrics", false, "print the fixed point's observable metrics (utilization, idle fraction, steal success s_T)")
	jsonFlag := flag.Bool("json", false, "emit the fixed point as JSON")
	flag.Parse()

	var m core.Model
	switch *model {
	case "nosteal":
		m = meanfield.NewNoSteal(*lambda)
	case "simple":
		m = meanfield.NewSimpleWS(*lambda)
	case "threshold":
		m = meanfield.NewThreshold(*lambda, *tFlag)
	case "preemptive":
		m = meanfield.NewPreemptive(*lambda, *bFlag, *tFlag)
	case "repeated":
		m = meanfield.NewRepeated(*lambda, *tFlag, *rFlag)
	case "choices":
		m = meanfield.NewChoices(*lambda, *tFlag, *dFlag)
	case "multisteal":
		m = meanfield.NewMultiSteal(*lambda, *tFlag, *kFlag)
	case "stages":
		m = meanfield.NewStages(*lambda, *cFlag, *tFlag)
	case "transfer":
		m = meanfield.NewTransfer(*lambda, *tFlag, *rFlag)
	case "rebalance":
		m = meanfield.NewRebalance(*lambda, meanfield.ConstRate(*rFlag), *rFlag)
	case "stealhalf":
		m = meanfield.NewStealHalf(*lambda, *tFlag)
	case "spawning":
		m = meanfield.NewSpawning(*lambda*(1-*liFlag), *liFlag, *tFlag)
	case "repeated-transfer":
		m = meanfield.NewRepeatedTransfer(*lambda, *tFlag, *raFlag, *rFlag)
	default:
		fmt.Fprintf(os.Stderr, "wsfixed: unknown model %q\n", *model)
		return 2
	}

	fp, err := meanfield.Solve(m, meanfield.SolveOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsfixed:", err)
		return 1
	}
	ratioT := core.TailRatio(fp.State, *tFlag+1, 1e-6)
	if *jsonFlag {
		nTails := *tails
		if nTails > m.Dim() {
			nTails = m.Dim()
		}
		out := struct {
			Model       string    `json:"model"`
			Lambda      float64   `json:"lambda"`
			Dim         int       `json:"dim"`
			Residual    float64   `json:"residual"`
			MeanTasks   float64   `json:"mean_tasks"`
			SojournTime float64   `json:"sojourn_time"`
			Utilization float64   `json:"utilization"`
			TailRatio   float64   `json:"tail_ratio"`
			Tails       []float64 `json:"tails"`
		}{m.Name(), *lambda, m.Dim(), fp.Residual, fp.MeanTasks(),
			fp.SojournTime(), fp.BusyFraction(), ratioT, fp.State[:nTails]}
		if err := cliutil.WriteJSON(os.Stdout, out); err != nil {
			fmt.Fprintln(os.Stderr, "wsfixed:", err)
			return 1
		}
		return 0
	}
	fmt.Printf("model:            %s\n", m.Name())
	fmt.Printf("dimension:        %d\n", m.Dim())
	fmt.Printf("residual:         %.3e\n", fp.Residual)
	fmt.Printf("mean tasks E[L]:  %.6f\n", fp.MeanTasks())
	fmt.Printf("time in sys E[T]: %.6f   (no stealing: %.6f)\n",
		fp.SojournTime(), meanfield.MM1SojournTime(*lambda))
	fmt.Printf("tail decay ratio: %.6f   (no stealing: %.6f)\n", ratioT, *lambda)
	if *metricsFlag {
		// The observable counterparts of the simulator's metrics layer:
		// what `wssim -metrics` should converge to for this model. The
		// FixedPoint helpers defer to core.Observer for the models whose
		// state is not a single tails vector (transfer, stages, ...).
		busy := fp.BusyFraction()
		fmt.Printf("utilization:      %.6f   (busy fraction)\n", busy)
		fmt.Printf("idle fraction:    %.6f\n", 1-busy)
		if sT, ok := fp.StealSuccessProb(*tFlag); ok {
			fmt.Printf("steal success:    %.6f   (victim above threshold, T=%d)\n", sT, *tFlag)
		}
	}
	fmt.Println("tails:")
	for i := 0; i < *tails && i < m.Dim(); i++ {
		fmt.Printf("  π_%-3d = %.8f\n", i, fp.State[i])
	}
	return 0
}
