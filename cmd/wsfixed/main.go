// Command wsfixed computes the mean-field fixed point of any model in the
// repository and prints its key metrics and leading tail entries.
//
// Usage:
//
//	wsfixed -model simple -lambda 0.9
//	wsfixed -model threshold -lambda 0.9 -T 3
//	wsfixed -model preemptive -lambda 0.9 -B 1 -T 4
//	wsfixed -model repeated -lambda 0.9 -T 2 -r 4
//	wsfixed -model choices -lambda 0.9 -T 2 -d 2
//	wsfixed -model multisteal -lambda 0.9 -T 6 -k 3
//	wsfixed -model stages -lambda 0.9 -c 20
//	wsfixed -model transfer -lambda 0.9 -T 4 -r 0.25
//	wsfixed -model rebalance -lambda 0.9 -r 2
//	wsfixed -model nosteal -lambda 0.9
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/meanfield"
)

func main() {
	os.Exit(run())
}

// run returns the process exit code instead of calling os.Exit so that
// deferred cleanups always execute and tests can drive it directly.
func run() int {
	model := flag.String("model", "simple", "model: nosteal, simple, threshold, preemptive, repeated, choices, multisteal, stages, transfer, rebalance, stealhalf, spawning, repeated-transfer")
	lambda := flag.Float64("lambda", 0.9, "arrival rate λ in (0,1)")
	tFlag := flag.Int("T", 2, "victim threshold")
	bFlag := flag.Int("B", 0, "preemptive steal-begin level")
	dFlag := flag.Int("d", 2, "victim choices")
	kFlag := flag.Int("k", 2, "tasks per steal")
	cFlag := flag.Int("c", 10, "Erlang stages per task")
	rFlag := flag.Float64("r", 1, "rate parameter (retry, transfer, or rebalance rate)")
	raFlag := flag.Float64("ra", 1, "retry rate for -model repeated-transfer")
	liFlag := flag.Float64("li", 0.3, "internal spawn rate for -model spawning")
	tails := flag.Int("tails", 12, "how many tail entries to print")
	metricsFlag := flag.Bool("metrics", false, "print the fixed point's observable metrics (utilization, idle fraction, steal success s_T)")
	jsonFlag := flag.Bool("json", false, "emit the fixed point as JSON")
	flag.Parse()

	spec := experiments.FixedPointSpec{
		Model:  *model,
		Lambda: *lambda,
		T:      *tFlag,
		B:      *bFlag,
		D:      *dFlag,
		K:      *kFlag,
		C:      *cFlag,
		R:      *rFlag,
		RA:     *raFlag,
		LI:     *liFlag,
		Tails:  *tails,
	}
	rep, fp, err := spec.Solve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsfixed:", err)
		return 1
	}
	if *jsonFlag {
		if err := cliutil.WriteJSON(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "wsfixed:", err)
			return 1
		}
		return 0
	}
	fmt.Printf("model:            %s\n", rep.Model)
	fmt.Printf("dimension:        %d\n", rep.Dim)
	fmt.Printf("residual:         %.3e\n", rep.Residual)
	fmt.Printf("mean tasks E[L]:  %.6f\n", rep.MeanTasks)
	fmt.Printf("time in sys E[T]: %.6f   (no stealing: %.6f)\n",
		rep.SojournTime, meanfield.MM1SojournTime(*lambda))
	fmt.Printf("tail decay ratio: %.6f   (no stealing: %.6f)\n", rep.TailRatio, *lambda)
	if *metricsFlag {
		// The observable counterparts of the simulator's metrics layer:
		// what `wssim -metrics` should converge to for this model. The
		// FixedPoint helpers defer to core.Observer for the models whose
		// state is not a single tails vector (transfer, stages, ...).
		busy := fp.BusyFraction()
		fmt.Printf("utilization:      %.6f   (busy fraction)\n", busy)
		fmt.Printf("idle fraction:    %.6f\n", 1-busy)
		if sT, ok := fp.StealSuccessProb(*tFlag); ok {
			fmt.Printf("steal success:    %.6f   (victim above threshold, T=%d)\n", sT, *tFlag)
		}
	}
	fmt.Println("tails:")
	for i := 0; i < *tails && i < rep.Dim; i++ {
		fmt.Printf("  π_%-3d = %.8f\n", i, fp.State[i])
	}
	return 0
}
