package repro

// End-to-end tests of the command-line tools: each binary is built once
// into a temporary directory and exercised with fast flag combinations,
// checking exit status and the shape of its output.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var buildDir string

// TestMain builds every command once into a shared temporary directory that
// outlives individual tests.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "repro-cli")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cli_test:", err)
		os.Exit(1)
	}
	for _, name := range []string{"wstables", "wssim", "wsfixed", "wsode", "wssweep"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if msg, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "cli_test: building %s: %v\n%s", name, err, msg)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	buildDir = dir
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// buildCmds returns the shared binary directory.
func buildCmds(t *testing.T) string {
	t.Helper()
	return buildDir
}

// run executes a built command and returns its combined output.
func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	dir := buildCmds(t)
	out, err := exec.Command(filepath.Join(dir, name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIWsfixed(t *testing.T) {
	out := run(t, "wsfixed", "-model", "simple", "-lambda", "0.5", "-tails", "3")
	if !strings.Contains(out, "1.618034") {
		t.Errorf("wsfixed missing golden-ratio estimate:\n%s", out)
	}
	if !strings.Contains(out, "π_0") {
		t.Errorf("wsfixed missing tails:\n%s", out)
	}
}

func TestCLIWsfixedAllModels(t *testing.T) {
	for _, m := range []string{"nosteal", "threshold", "preemptive", "repeated",
		"choices", "multisteal", "stealhalf", "spawning", "transfer", "rebalance", "repeated-transfer"} {
		args := []string{"-model", m, "-lambda", "0.7", "-tails", "2", "-T", "4", "-B", "1", "-k", "2"}
		out := run(t, "wsfixed", args...)
		if !strings.Contains(out, "time in sys") {
			t.Errorf("wsfixed -model %s produced no metrics:\n%s", m, out)
		}
	}
}

func TestCLIWsfixedRejectsUnknownModel(t *testing.T) {
	dir := buildCmds(t)
	out, err := exec.Command(filepath.Join(dir, "wsfixed"), "-model", "bogus").CombinedOutput()
	if err == nil {
		t.Errorf("unknown model accepted:\n%s", out)
	}
}

func TestCLIWssim(t *testing.T) {
	out := run(t, "wssim", "-n", "16", "-lambda", "0.7", "-policy", "steal", "-T", "2",
		"-horizon", "2000", "-warmup", "200", "-reps", "2")
	if !strings.Contains(out, "time in system") || !strings.Contains(out, "stealSuccesses") {
		t.Errorf("wssim output malformed:\n%s", out)
	}
}

func TestCLIWssimStatic(t *testing.T) {
	out := run(t, "wssim", "-n", "16", "-policy", "steal", "-T", "2", "-retry", "5",
		"-initial", "4", "-horizon", "1000", "-reps", "2")
	if !strings.Contains(out, "drain time") {
		t.Errorf("static wssim missing drain time:\n%s", out)
	}
}

func TestCLIWstablesSingle(t *testing.T) {
	out := run(t, "wstables", "-table", "threshold")
	if !strings.Contains(out, "Threshold sweep") {
		t.Errorf("wstables -table threshold:\n%s", out)
	}
}

func TestCLIWstablesCSV(t *testing.T) {
	out := run(t, "wstables", "-table", "tails", "-csv")
	if !strings.Contains(out, "model,measured ratio") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}

func TestCLIWstablesRejectsUnknown(t *testing.T) {
	dir := buildCmds(t)
	out, err := exec.Command(filepath.Join(dir, "wstables"), "-table", "nope").CombinedOutput()
	if err == nil {
		t.Errorf("unknown table accepted:\n%s", out)
	}
}

func TestCLIWsode(t *testing.T) {
	out := run(t, "wsode", "-model", "simple", "-lambda", "0.8", "-span", "10", "-dt", "2")
	if !strings.Contains(out, "t,mean_tasks") {
		t.Errorf("wsode CSV header missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 6 {
		t.Errorf("wsode produced too few rows:\n%s", out)
	}
}

func TestCLIWsodePlot(t *testing.T) {
	out := run(t, "wsode", "-model", "simple", "-lambda", "0.8", "-span", "20", "-dt", "1", "-plot")
	if !strings.Contains(out, "mean tasks per processor") || !strings.Contains(out, "*") {
		t.Errorf("wsode -plot chart missing:\n%s", out)
	}
}

func TestCLIWssweep(t *testing.T) {
	out := run(t, "wssweep", "-sweep", "multisteal", "-lambda", "0.9", "-T", "6")
	if !strings.Contains(out, "k=1") || !strings.Contains(out, "⌈j/2⌉") {
		t.Errorf("wssweep multisteal output:\n%s", out)
	}
	out = run(t, "wssweep", "-sweep", "lambda", "-model", "simple")
	if !strings.Contains(out, "λ=0.99") {
		t.Errorf("wssweep lambda output:\n%s", out)
	}
}
