package repro

// End-to-end tests of the command-line tools: each binary is built once
// into a temporary directory and exercised with fast flag combinations,
// checking exit status and the shape of its output.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

var buildDir string

// TestMain builds every command once into a shared temporary directory that
// outlives individual tests.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "repro-cli")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cli_test:", err)
		os.Exit(1)
	}
	for _, name := range []string{"wstables", "wssim", "wsfixed", "wsode", "wssweep", "wsbench", "wsserved", "wscheck"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if msg, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "cli_test: building %s: %v\n%s", name, err, msg)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	buildDir = dir
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// buildCmds returns the shared binary directory.
func buildCmds(t *testing.T) string {
	t.Helper()
	return buildDir
}

// run executes a built command and returns its combined output.
func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	dir := buildCmds(t)
	out, err := exec.Command(filepath.Join(dir, name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIWsfixed(t *testing.T) {
	out := run(t, "wsfixed", "-model", "simple", "-lambda", "0.5", "-tails", "3")
	if !strings.Contains(out, "1.618034") {
		t.Errorf("wsfixed missing golden-ratio estimate:\n%s", out)
	}
	if !strings.Contains(out, "π_0") {
		t.Errorf("wsfixed missing tails:\n%s", out)
	}
}

func TestCLIWsfixedAllModels(t *testing.T) {
	for _, m := range []string{"nosteal", "threshold", "preemptive", "repeated",
		"choices", "multisteal", "stealhalf", "spawning", "transfer", "rebalance", "repeated-transfer"} {
		args := []string{"-model", m, "-lambda", "0.7", "-tails", "2", "-T", "4", "-B", "1", "-k", "2"}
		out := run(t, "wsfixed", args...)
		if !strings.Contains(out, "time in sys") {
			t.Errorf("wsfixed -model %s produced no metrics:\n%s", m, out)
		}
	}
}

func TestCLIWsfixedRejectsUnknownModel(t *testing.T) {
	dir := buildCmds(t)
	out, err := exec.Command(filepath.Join(dir, "wsfixed"), "-model", "bogus").CombinedOutput()
	if err == nil {
		t.Errorf("unknown model accepted:\n%s", out)
	}
}

func TestCLIWssim(t *testing.T) {
	out := run(t, "wssim", "-n", "16", "-lambda", "0.7", "-policy", "steal", "-T", "2",
		"-horizon", "2000", "-warmup", "200", "-reps", "2")
	if !strings.Contains(out, "time in system") || !strings.Contains(out, "stealSuccesses") {
		t.Errorf("wssim output malformed:\n%s", out)
	}
}

// wssimEngineArgs returns a fast wssim invocation of one engine; the shared
// flag set keeps the engine subtests comparable.
func wssimEngineArgs(engine string, extra ...string) []string {
	args := []string{"-engine", engine, "-n", "64", "-lambda", "0.85", "-policy", "steal", "-T", "2",
		"-horizon", "2000", "-warmup", "500", "-reps", "2", "-seed", "7"}
	return append(args, extra...)
}

// TestCLIWssimEngines runs each backend through the binary and checks the
// text report names the engine it ran.
func TestCLIWssimEngines(t *testing.T) {
	for _, engine := range []string{"des", "fluid", "hybrid"} {
		t.Run(engine, func(t *testing.T) {
			out := run(t, "wssim", wssimEngineArgs(engine, "-tracked", map[string]string{
				"des": "0", "fluid": "0", "hybrid": "32"}[engine])...)
			if !strings.Contains(out, "time in system") {
				t.Errorf("wssim -engine %s output malformed:\n%s", engine, out)
			}
			if engine != "des" && !strings.Contains(out, "engine:           "+engine) {
				t.Errorf("wssim -engine %s does not report its engine:\n%s", engine, out)
			}
			if engine == "hybrid" && !strings.Contains(out, "tracked sample: 32 of 64") {
				t.Errorf("hybrid report missing tracked sample line:\n%s", out)
			}
		})
	}
}

// TestCLIWssimEngineJSON pins the engine/tracked echo in -json output and
// the default-substitution path (no explicit lambda/horizon for hybrid).
func TestCLIWssimEngineJSON(t *testing.T) {
	out := run(t, "wssim", "-engine", "hybrid", "-n", "10000", "-horizon", "800", "-warmup", "200",
		"-reps", "1", "-json")
	// The combined output starts with the stderr default note; the JSON
	// object begins at the first brace.
	if i := strings.Index(out, "{"); i >= 0 {
		out = out[i:]
	}
	var rep struct {
		Engine  string  `json:"engine"`
		Tracked int     `json:"tracked"`
		N       int     `json:"n"`
		Lambda  float64 `json:"lambda"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("wssim hybrid -json is not valid JSON: %v\n%s", err, out)
	}
	if rep.Engine != "hybrid" || rep.Tracked != 256 || rep.N != 10000 {
		t.Errorf("hybrid -json echo wrong: %+v", rep)
	}
	if rep.Lambda != 0.9 {
		t.Errorf("hybrid lambda default %v, want 0.9", rep.Lambda)
	}
}

// TestCLIWssimEngineErrors: unknown engines and impossible combinations are
// usage errors, not crashes.
func TestCLIWssimEngineErrors(t *testing.T) {
	dir := buildCmds(t)
	cases := [][]string{
		{"-engine", "warp", "-n", "16", "-lambda", "0.5"},
		{"-engine", "fluid", "-n", "16", "-lambda", "0.5", "-tracked", "8"},
		{"-engine", "hybrid", "-n", "16", "-lambda", "0.5", "-tracked", "32"},
		{"-engine", "hybrid", "-n", "64", "-lambda", "0.5", "-d", "2"},
	}
	for _, args := range cases {
		out, err := exec.Command(filepath.Join(dir, "wssim"), args...).CombinedOutput()
		if err == nil {
			t.Errorf("wssim %v succeeded, want usage error:\n%s", args, out)
		}
	}
}

func TestCLIWssimStatic(t *testing.T) {
	out := run(t, "wssim", "-n", "16", "-policy", "steal", "-T", "2", "-retry", "5",
		"-initial", "4", "-horizon", "1000", "-reps", "2")
	if !strings.Contains(out, "drain time") {
		t.Errorf("static wssim missing drain time:\n%s", out)
	}
}

func TestCLIWstablesSingle(t *testing.T) {
	out := run(t, "wstables", "-table", "threshold")
	if !strings.Contains(out, "Threshold sweep") {
		t.Errorf("wstables -table threshold:\n%s", out)
	}
}

func TestCLIWstablesCSV(t *testing.T) {
	out := run(t, "wstables", "-table", "tails", "-csv")
	if !strings.Contains(out, "model,measured ratio") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}

func TestCLIWstablesRejectsUnknown(t *testing.T) {
	dir := buildCmds(t)
	out, err := exec.Command(filepath.Join(dir, "wstables"), "-table", "nope").CombinedOutput()
	if err == nil {
		t.Errorf("unknown table accepted:\n%s", out)
	}
}

func TestCLIWsode(t *testing.T) {
	out := run(t, "wsode", "-model", "simple", "-lambda", "0.8", "-span", "10", "-dt", "2")
	if !strings.Contains(out, "t,mean_tasks") {
		t.Errorf("wsode CSV header missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 6 {
		t.Errorf("wsode produced too few rows:\n%s", out)
	}
}

func TestCLIWsodePlot(t *testing.T) {
	out := run(t, "wsode", "-model", "simple", "-lambda", "0.8", "-span", "20", "-dt", "1", "-plot")
	if !strings.Contains(out, "mean tasks per processor") || !strings.Contains(out, "*") {
		t.Errorf("wsode -plot chart missing:\n%s", out)
	}
}

func TestCLIWssweep(t *testing.T) {
	out := run(t, "wssweep", "-sweep", "multisteal", "-lambda", "0.9", "-T", "6")
	if !strings.Contains(out, "k=1") || !strings.Contains(out, "⌈j/2⌉") {
		t.Errorf("wssweep multisteal output:\n%s", out)
	}
	out = run(t, "wssweep", "-sweep", "lambda", "-model", "simple")
	if !strings.Contains(out, "λ=0.99") {
		t.Errorf("wssweep lambda output:\n%s", out)
	}
}

func TestCLIWssimMetrics(t *testing.T) {
	out := run(t, "wssim", "-n", "16", "-lambda", "0.7", "-policy", "steal", "-T", "2",
		"-horizon", "2000", "-warmup", "200", "-reps", "2", "-metrics")
	for _, want := range []string{"Simulation metrics", "utilization", "steal success rate",
		"Queue-length distribution", ">="} {
		if !strings.Contains(out, want) {
			t.Errorf("wssim -metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIWssimJSON checks the -json report parses and its metrics agree
// with the flags that produced it.
func TestCLIWssimJSON(t *testing.T) {
	out := run(t, "wssim", "-n", "16", "-lambda", "0.7", "-policy", "steal", "-T", "2",
		"-horizon", "4000", "-warmup", "400", "-reps", "2", "-metrics", "-json")
	var rep struct {
		N       int     `json:"n"`
		Lambda  float64 `json:"lambda"`
		Policy  string  `json:"policy"`
		Metrics struct {
			Reps        int `json:"reps"`
			Utilization struct {
				Mean float64 `json:"mean"`
			} `json:"utilization"`
			QueueHist []float64 `json:"queue_hist"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("wssim -json is not valid JSON: %v\n%s", err, out)
	}
	if rep.N != 16 || rep.Lambda != 0.7 || rep.Policy != "steal" || rep.Metrics.Reps != 2 {
		t.Errorf("wssim -json round trip lost fields: %+v", rep)
	}
	if u := rep.Metrics.Utilization.Mean; u < 0.6 || u > 0.8 {
		t.Errorf("wssim -json utilization %v implausible for λ=0.7", u)
	}
	if len(rep.Metrics.QueueHist) == 0 {
		t.Errorf("wssim -json has no queue histogram:\n%s", out)
	}
}

// TestCLIProfiles verifies the pprof flags of each tool that has them
// actually write non-empty profile files.
func TestCLIProfiles(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"wssim", []string{"-n", "8", "-lambda", "0.5", "-policy", "steal", "-T", "2",
			"-horizon", "500", "-warmup", "50", "-reps", "1"}},
		{"wstables", []string{"-table", "tails"}},
		{"wssweep", []string{"-sweep", "threshold", "-max", "3"}},
	}
	for _, c := range cases {
		cpu := filepath.Join(dir, c.name+".cpu.pprof")
		mem := filepath.Join(dir, c.name+".mem.pprof")
		run(t, c.name, append(c.args, "-cpuprofile", cpu, "-memprofile", mem)...)
		for _, p := range []string{cpu, mem} {
			fi, err := os.Stat(p)
			if err != nil {
				t.Errorf("%s did not write %s: %v", c.name, p, err)
			} else if fi.Size() == 0 {
				t.Errorf("%s wrote an empty profile %s", c.name, p)
			}
		}
	}
}

// TestCLIProfilesWrittenOnError pins the bug the run() restructure fixed:
// a usage error must still flush the profiles, because the deferred
// stopCPU/WriteMemProfile now run on every exit path instead of being
// skipped by os.Exit.
func TestCLIProfilesWrittenOnError(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"wstables", []string{"-table", "nope"}},
		{"wssweep", []string{"-sweep", "nope"}},
	}
	for _, c := range cases {
		cpu := filepath.Join(dir, c.name+".err.cpu.pprof")
		mem := filepath.Join(dir, c.name+".err.mem.pprof")
		cmd := exec.Command(filepath.Join(buildCmds(t), c.name),
			append(c.args, "-cpuprofile", cpu, "-memprofile", mem)...)
		out, err := cmd.Output()
		if err == nil {
			t.Errorf("%s %v succeeded, want usage error:\n%s", c.name, c.args, out)
		}
		for _, p := range []string{cpu, mem} {
			fi, statErr := os.Stat(p)
			if statErr != nil {
				t.Errorf("%s error path did not write %s: %v", c.name, p, statErr)
			} else if fi.Size() == 0 {
				t.Errorf("%s error path wrote an empty profile %s", c.name, p)
			}
		}
	}
}

// TestCLIWstablesWorkersDeterministic checks the scheduler's promise at
// the binary boundary: the same table rendered with different -workers
// counts is byte-identical.
func TestCLIWstablesWorkersDeterministic(t *testing.T) {
	args := []string{"-table", "1", "-reps", "2", "-horizon", "1000", "-csv"}
	one := run(t, "wstables", append(args, "-workers", "1")...)
	four := run(t, "wstables", append(args, "-workers", "4")...)
	if one != four {
		t.Errorf("wstables output depends on -workers:\n--- workers=1\n%s--- workers=4\n%s", one, four)
	}
}

// TestCLIWssimWorkersDeterministic does the same for wssim's replication
// runner.
func TestCLIWssimWorkersDeterministic(t *testing.T) {
	// Plain text output only: the -json report embeds the wall-clock
	// events/sec summary, which legitimately varies run to run.
	args := []string{"-n", "16", "-lambda", "0.7", "-policy", "steal", "-T", "2",
		"-horizon", "1000", "-warmup", "100", "-reps", "3"}
	one := run(t, "wssim", append(args, "-workers", "1")...)
	four := run(t, "wssim", append(args, "-workers", "4")...)
	if one != four {
		t.Errorf("wssim output depends on -workers:\n--- workers=1\n%s--- workers=4\n%s", one, four)
	}
}

// TestCLIWsbench smoke-tests the perf recorder (throughput section only;
// the table timings are minutes of work) and sanity-checks its numbers.
func TestCLIWsbench(t *testing.T) {
	out := run(t, "wsbench", "-tables=false", "-runs", "1", "-horizon", "150", "-out", "-")
	// Output is the JSON report followed by the human summary; parse the
	// JSON prefix.
	dec := json.NewDecoder(strings.NewReader(out))
	var rep struct {
		NumCPU     int `json:"num_cpu"`
		Throughput []struct {
			Name           string  `json:"name"`
			Events         int64   `json:"events"`
			NsPerEvent     float64 `json:"ns_per_event"`
			AllocsPerEvent float64 `json:"allocs_per_event"`
		} `json:"throughput"`
	}
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("wsbench emitted invalid JSON: %v\n%s", err, out)
	}
	if rep.NumCPU < 1 || len(rep.Throughput) == 0 {
		t.Fatalf("wsbench report incomplete: %+v", rep)
	}
	for _, tp := range rep.Throughput {
		if tp.Events <= 0 || tp.NsPerEvent <= 0 {
			t.Errorf("%s: implausible measurement %+v", tp.Name, tp)
		}
		if tp.AllocsPerEvent > 0.01 {
			t.Errorf("%s: allocs/event = %v, want ~0 (reuse path regressed)", tp.Name, tp.AllocsPerEvent)
		}
	}
}

// tableJSON is the shape table.WriteJSON emits.
type tableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

func TestCLIWstablesJSON(t *testing.T) {
	out := run(t, "wstables", "-table", "tails", "-json")
	var tb tableJSON
	if err := json.Unmarshal([]byte(out), &tb); err != nil {
		t.Fatalf("wstables -json is not valid JSON: %v\n%s", err, out)
	}
	if tb.Title == "" || len(tb.Headers) == 0 || len(tb.Rows) == 0 {
		t.Errorf("wstables -json table is empty: %+v", tb)
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Headers) {
			t.Errorf("row %d has %d cells, want %d", i, len(row), len(tb.Headers))
		}
	}
}

func TestCLIWstablesMetricsTable(t *testing.T) {
	out := run(t, "wstables", "-table", "stability", "-metrics",
		"-reps", "1", "-horizon", "800")
	if !strings.Contains(out, "Simulation metrics") || !strings.Contains(out, "M1 simple WS") {
		t.Errorf("wstables -metrics table missing:\n%s", out)
	}
}

func TestCLIWssweepMetricsJSON(t *testing.T) {
	out := run(t, "wssweep", "-sweep", "threshold", "-max", "4", "-metrics", "-json")
	var tb tableJSON
	if err := json.Unmarshal([]byte(out), &tb); err != nil {
		t.Fatalf("wssweep -json is not valid JSON: %v\n%s", err, out)
	}
	want := []string{"value", "E[T]", "E[L]", "utilization", "s_T"}
	if strings.Join(tb.Headers, "|") != strings.Join(want, "|") {
		t.Errorf("wssweep -metrics headers %v, want %v", tb.Headers, want)
	}
}

func TestCLIWsfixedMetricsJSON(t *testing.T) {
	out := run(t, "wsfixed", "-model", "simple", "-lambda", "0.9", "-metrics")
	if !strings.Contains(out, "utilization") || !strings.Contains(out, "steal success") {
		t.Errorf("wsfixed -metrics output:\n%s", out)
	}
	out = run(t, "wsfixed", "-model", "simple", "-lambda", "0.9", "-json")
	var fp struct {
		Model       string    `json:"model"`
		Utilization float64   `json:"utilization"`
		Tails       []float64 `json:"tails"`
	}
	if err := json.Unmarshal([]byte(out), &fp); err != nil {
		t.Fatalf("wsfixed -json is not valid JSON: %v\n%s", err, out)
	}
	// s₁ = λ at any stable fixed point.
	if fp.Utilization < 0.899 || fp.Utilization > 0.901 {
		t.Errorf("wsfixed -json utilization %v, want λ=0.9", fp.Utilization)
	}
	if len(fp.Tails) == 0 || fp.Tails[0] != 1 {
		t.Errorf("wsfixed -json tails malformed: %v", fp.Tails)
	}
}

func TestCLIWsodeMetricsJSON(t *testing.T) {
	out := run(t, "wsode", "-model", "simple", "-lambda", "0.8", "-span", "200", "-dt", "5", "-metrics")
	if !strings.Contains(out, "settle time") || !strings.Contains(out, "fixed point") {
		t.Errorf("wsode -metrics output:\n%s", out)
	}
	out = run(t, "wsode", "-model", "simple", "-lambda", "0.8", "-span", "200", "-dt", "5", "-json")
	var tr struct {
		SettleTime float64   `json:"settle_time"`
		Times      []float64 `json:"times"`
		Loads      []float64 `json:"loads"`
	}
	if err := json.Unmarshal([]byte(out), &tr); err != nil {
		t.Fatalf("wsode -json is not valid JSON: %v\n%s", err, out)
	}
	if tr.SettleTime <= 0 {
		t.Errorf("wsode -json settle time %v, want positive (span 200 should converge)", tr.SettleTime)
	}
	if len(tr.Times) != len(tr.Loads) || len(tr.Times) < 10 {
		t.Errorf("wsode -json trajectory malformed: %d times, %d loads", len(tr.Times), len(tr.Loads))
	}
}

// startServed boots the real wsserved daemon on an ephemeral port and
// returns its listen address; the daemon is torn down with the test.
func startServed(t *testing.T) string {
	t.Helper()
	dir := buildCmds(t)

	cmd := exec.Command(filepath.Join(dir, "wsserved"), "-addr", "127.0.0.1:0", "-log", "text")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		if err := cmd.Wait(); err != nil {
			t.Errorf("wsserved did not exit cleanly after SIGTERM: %v", err)
		}
	})

	// The daemon logs its bound address once listening; scrape it.
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "addr="); ok {
			addr = strings.Fields(rest)[0]
			break
		}
	}
	if addr == "" {
		t.Fatal("wsserved never reported its listen address")
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained
	return addr
}

// TestServeMatchesWsfixed boots the real wsserved daemon and asserts the
// HTTP fixed-point response is byte-identical to wsfixed -json: the serving
// layer and the CLI render the same report through the same encoder.
func TestServeMatchesWsfixed(t *testing.T) {
	addr := startServed(t)

	resp, err := http.Post("http://"+addr+"/v1/fixedpoint", "application/json",
		strings.NewReader(`{"model":"threshold","lambda":0.8,"t":3,"tails":5}`))
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/fixedpoint: status %d, err %v", resp.StatusCode, err)
	}

	cli := run(t, "wsfixed", "-model", "threshold", "-lambda", "0.8", "-T", "3", "-tails", "5", "-json")
	if string(served) != cli {
		t.Errorf("served response differs from wsfixed -json\nserved: %s\ncli:    %s", served, cli)
	}
}

// TestServeMatchesWssimWorkloads drives the same non-exponential workloads
// through wssim -json and POST /v1/simulate and asserts the reports are
// byte-identical after scrubbing the wall-clock fields (the metrics block
// embeds events/sec, which legitimately varies run to run). This pins the
// whole workload path — spec parsing, distribution fitting, arrival-source
// threading, report rendering — across the CLI and serving layers at once.
func TestServeMatchesWssimWorkloads(t *testing.T) {
	addr := startServed(t)

	canon := func(raw []byte) string {
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("invalid report JSON: %v\n%s", err, raw)
		}
		out, err := json.MarshalIndent(scrubWallClock(v), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}

	cases := []struct {
		name string
		args []string
		body string
	}{
		{
			name: "h2",
			args: []string{"-n", "32", "-lambda", "0.85", "-policy", "steal", "-T", "2",
				"-service", "h2", "-scv", "4",
				"-horizon", "800", "-warmup", "100", "-reps", "2", "-seed", "1998", "-metrics", "-json"},
			body: `{"n":32,"lambda":0.85,"policy":"steal","t":2,"service":{"dist":"h2","scv":4},` +
				`"horizon":800,"warmup":100,"reps":2,"seed":1998,"qhist":16}`,
		},
		{
			name: "mmpp",
			args: []string{"-n", "32", "-policy", "steal", "-T", "2",
				"-arrivals", "mmpp", "-mmpp-rates", "1.6,0.1", "-mmpp-switch", "0.5,0.5",
				"-horizon", "800", "-warmup", "100", "-reps", "2", "-seed", "1998", "-json"},
			body: `{"n":32,"policy":"steal","t":2,` +
				`"arrivals":{"kind":"mmpp","rates":[1.6,0.1],"switch":[0.5,0.5]},` +
				`"horizon":800,"warmup":100,"reps":2,"seed":1998}`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post("http://"+addr+"/v1/simulate", "application/json",
				strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			served, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /v1/simulate: status %d, err %v\n%s", resp.StatusCode, err, served)
			}

			cli := run(t, "wssim", c.args...)
			if got, want := canon(served), canon([]byte(cli)); got != want {
				t.Errorf("served simulate report differs from wssim -json\nserved: %s\ncli:    %s", got, want)
			}
		})
	}
}

func TestCLIWscheckList(t *testing.T) {
	out := run(t, "wscheck", "-list")
	for _, name := range []string{"nosteal", "simple", "threshold", "hetero", "h2", "crossover", "cluster"} {
		if !strings.Contains(out, name) {
			t.Errorf("wscheck -list missing %q:\n%s", name, out)
		}
	}
}

func TestCLIWscheckSingleVariant(t *testing.T) {
	out := run(t, "wscheck", "-model", "simple", "-quick", "-json")
	var rep struct {
		OK     bool `json:"ok"`
		Checks int  `json:"checks"`
		Failed int  `json:"failed"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("wscheck -json output not JSON: %v\n%s", err, out)
	}
	if !rep.OK || rep.Failed != 0 || rep.Checks == 0 {
		t.Errorf("wscheck -model simple -quick: ok=%v checks=%d failed=%d\n%s",
			rep.OK, rep.Checks, rep.Failed, out)
	}
}

func TestCLIWscheckUsageErrors(t *testing.T) {
	dir := buildCmds(t)
	cases := [][]string{
		{},                           // neither -all nor -model
		{"-all", "-model", "simple"}, // both
		{"-model", "nosuch"},         // unknown variant
		{"-all", "-ns", "64,16"},     // unsorted grid
	}
	for _, args := range cases {
		cmd := exec.Command(filepath.Join(dir, "wscheck"), args...)
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("wscheck %v: want exit 2, got %v", args, err)
		}
	}
}
