package repro

// Golden-table regression tests: each of the paper's four tables (the
// M0–M3 model variants — no stealing baseline inside Table 1's estimate,
// constant service, transfer delays, two choices) is regenerated through
// the real wstables binary at a tiny fixed-seed scale and compared
// byte-for-byte against a committed golden file. The simulator is
// deterministic given a seed regardless of worker scheduling, so any
// diff means the engine's sampling sequence, the solvers, or the table
// formatting changed behavior.
//
// After an intentional change, regenerate with:
//
//	go test -run TestGoldenTables -update

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenArgs keeps the run cheap: 2 replications of a short horizon. The
// seed matches wstables' default so the command line is reproducible by
// hand.
func goldenArgs(tbl string) []string {
	return []string{"-table", tbl, "-reps", "2", "-horizon", "1500", "-seed", "1998", "-csv"}
}

func TestGoldenTables(t *testing.T) {
	for _, tbl := range []string{"1", "2", "3", "4"} {
		t.Run("table"+tbl, func(t *testing.T) {
			t.Parallel()
			out := run(t, "wstables", goldenArgs(tbl)...)
			golden := filepath.Join("testdata", "wstables", "table"+tbl+".golden.csv")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestGoldenTables -update`): %v", err)
			}
			if out != string(want) {
				t.Errorf("table %s drifted from %s.\nGot:\n%s\nWant:\n%s\n(regenerate with -update if the change is intentional)",
					tbl, golden, out, want)
			}
		})
	}
}

// wssimGoldenArgs is the engine-parameterized sibling of goldenArgs: the
// same tiny fixed-seed configuration run through each simulation backend.
func wssimGoldenArgs(engine string) []string {
	args := []string{"-engine", engine, "-n", "32", "-lambda", "0.85", "-policy", "steal", "-T", "2",
		"-horizon", "1500", "-warmup", "200", "-reps", "2", "-seed", "1998", "-metrics", "-json"}
	if engine == "hybrid" {
		args = append(args, "-tracked", "16")
	}
	return args
}

// wssimGoldenCases names every wssim golden: one exponential case per
// engine (the PR 6 baselines, which must never drift) plus the workload
// cases — phase-type service and bursty MMPP arrivals through the DES
// sampling path.
func wssimGoldenCases() map[string][]string {
	return map[string][]string{
		"des":    wssimGoldenArgs("des"),
		"fluid":  wssimGoldenArgs("fluid"),
		"hybrid": wssimGoldenArgs("hybrid"),
		"des-h2": append(wssimGoldenArgs("des"), "-service", "h2", "-scv", "4"),
		"des-mmpp": {"-engine", "des", "-n", "32", "-policy", "steal", "-T", "2",
			"-arrivals", "mmpp", "-mmpp-rates", "1.6,0.1", "-mmpp-switch", "0.5,0.5",
			"-horizon", "1500", "-warmup", "200", "-reps", "2", "-seed", "1998", "-metrics", "-json"},
	}
}

// scrubWallClock recursively removes the wall-clock-dependent keys from a
// decoded JSON value, so the goldens pin the sampling sequence and the
// report structure without pinning machine speed.
func scrubWallClock(v any) any {
	switch x := v.(type) {
	case map[string]any:
		delete(x, "wall_seconds")
		delete(x, "events_per_sec")
		for k, e := range x {
			x[k] = scrubWallClock(e)
		}
	case []any:
		for i, e := range x {
			x[i] = scrubWallClock(e)
		}
	}
	return v
}

// TestGoldenWssimEngines regenerates one wssim -json report per golden
// case and compares the wall-clock-scrubbed structure byte-for-byte
// against a committed golden. Any diff means an engine's sampling
// sequence (des, hybrid), an integration (fluid), or a workload model's
// sampling path (des-h2, des-mmpp) changed behavior.
func TestGoldenWssimEngines(t *testing.T) {
	for name, args := range wssimGoldenCases() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out := run(t, "wssim", args...)
			var v any
			if err := json.Unmarshal([]byte(out), &v); err != nil {
				t.Fatalf("wssim golden %s -json invalid: %v\n%s", name, err, out)
			}
			canon, err := json.MarshalIndent(scrubWallClock(v), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			canon = append(canon, '\n')
			golden := filepath.Join("testdata", "wssim", name+".golden.json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, canon, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestGoldenWssimEngines -update`): %v", err)
			}
			if string(canon) != string(want) {
				t.Errorf("wssim golden %s drifted from %s.\nGot:\n%s\nWant:\n%s\n(regenerate with -update if the change is intentional)",
					name, golden, canon, want)
			}
		})
	}
}

// TestGoldenRunDeterminism guards the premise of the golden files: two
// fresh processes with the same seed must produce identical bytes.
func TestGoldenRunDeterminism(t *testing.T) {
	a := run(t, "wstables", goldenArgs("1")...)
	b := run(t, "wstables", goldenArgs("1")...)
	if a != b {
		t.Fatalf("wstables is not deterministic across runs:\n%s\nvs\n%s", a, b)
	}
}

// TestGoldenFilesCommitted fails loudly if someone deletes testdata/
// without removing the tests.
func TestGoldenFilesCommitted(t *testing.T) {
	for _, tbl := range []string{"1", "2", "3", "4"} {
		p := filepath.Join("testdata", "wstables", fmt.Sprintf("table%s.golden.csv", tbl))
		if _, err := os.Stat(p); err != nil && !*update {
			t.Errorf("golden file %s missing: %v", p, err)
		}
	}
	for name := range wssimGoldenCases() {
		p := filepath.Join("testdata", "wssim", name+".golden.json")
		if _, err := os.Stat(p); err != nil && !*update {
			t.Errorf("golden file %s missing: %v", p, err)
		}
	}
}
