#!/usr/bin/env sh
# Chaos harness for the wsserved daemon: boot the real binary with
# deterministic fault injection enabled (panics, errors, latency on the
# serving and scheduling seams), fire a storm of /v1/simulate requests,
# and assert the robustness contract:
#
#   - the daemon survives every injected fault (no crash, no hang);
#   - the circuit breaker on /v1/simulate opens under the fault load and
#     recovers via half-open probes;
#   - the cached endpoints (/v1/fixedpoint, /v1/ode) and the control
#     plane keep serving 200s throughout the storm;
#   - every injected fault is visible in /metrics
#     (wsserved_chaos_injections_total, ws_serve_panics_total, ...).
#
#   scripts/chaos.sh [port] [metrics-snapshot-path]
#
# Exits non-zero on the first failed assertion. Needs curl.
set -eu
cd "$(dirname "$0")/.."

PORT="${1:-18090}"
SNAPSHOT="${2:-}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/wsserved"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

echo "# build"
go build -o "$BIN" ./cmd/wsserved

echo "# start (chaos: panic 0.05, error 0.1, latency 0.2)"
"$BIN" -addr "127.0.0.1:$PORT" -log off -queue 64 \
    -chaos.seed 42 \
    -chaos.p.panic 0.05 -chaos.p.error 0.1 -chaos.p.latency 0.2 \
    -chaos.latency 2ms \
    -breaker.threshold 0.10 -breaker.window 20 -breaker.min-samples 10 \
    -breaker.cooldown 200ms &
SRV_PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "FAIL: daemon never became healthy"; exit 1; }
    sleep 0.1
done
echo "ok: /healthz"

echo "# storm: 200 simulate requests with varied seeds"
S200=0
S422=0
S500=0
S503=0
OTHER=0
i=0
while [ "$i" -lt 200 ]; do
    CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        -d "{\"n\":4,\"lambda\":0.7,\"horizon\":60,\"warmup\":10,\"reps\":1,\"seed\":$i}" \
        "$BASE/v1/simulate" || echo 000)
    case "$CODE" in
    200) S200=$((S200 + 1)) ;;
    422) S422=$((S422 + 1)) ;;
    500) S500=$((S500 + 1)) ;;
    503)
        S503=$((S503 + 1))
        sleep 0.05 # polite backoff lets the breaker cool down and probe
        ;;
    *) OTHER=$((OTHER + 1)) ;;
    esac
    # The cached tier must stay healthy mid-storm.
    if [ $((i % 20)) -eq 0 ]; then
        FP=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
            -d '{"model":"simple","lambda":0.9}' "$BASE/v1/fixedpoint")
        [ "$FP" = "200" ] || { echo "FAIL: /v1/fixedpoint returned $FP mid-storm"; exit 1; }
        ODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
            -d '{"model":"simple","lambda":0.8,"span":5}' "$BASE/v1/ode")
        [ "$ODE" = "200" ] || { echo "FAIL: /v1/ode returned $ODE mid-storm"; exit 1; }
    fi
    i=$((i + 1))
done
echo "storm outcomes: 200=$S200 422=$S422 500=$S500 503=$S503 other=$OTHER"
[ "$OTHER" = "0" ] || { echo "FAIL: $OTHER requests got no HTTP response (daemon crash?)"; exit 1; }
[ "$S200" -gt 0 ] || { echo "FAIL: no simulate request ever succeeded"; exit 1; }
[ "$S500" -gt 0 ] || { echo "FAIL: no injected fault surfaced as a 500"; exit 1; }

# The daemon must still be alive and ready.
kill -0 "$SRV_PID" 2>/dev/null || { echo "FAIL: daemon died during the storm"; exit 1; }
curl -fsS "$BASE/readyz" >/dev/null || { echo "FAIL: daemon not ready after the storm"; exit 1; }
echo "ok: daemon survived the storm"

METRICS=$(curl -fsS "$BASE/metrics")
if [ -n "$SNAPSHOT" ]; then
    printf '%s\n' "$METRICS" >"$SNAPSHOT"
    echo "ok: metrics snapshot written to $SNAPSHOT"
fi

assert_metric() {
    printf '%s\n' "$METRICS" | grep -q "$1" || {
        echo "FAIL: /metrics missing $2"
        printf '%s\n' "$METRICS" | grep -E 'chaos|breaker|panic' || true
        exit 1
    }
    echo "ok: $2"
}

assert_metric '^wsserved_chaos_injections_total{kind="panic",site="serve.simulate"} [1-9]' \
    'panic injections counted'
assert_metric '^wsserved_chaos_injections_total{kind="error",site="serve.simulate"} [1-9]' \
    'error injections counted'
assert_metric '^wsserved_chaos_injections_total{kind="latency",site="serve.simulate"} [1-9]' \
    'latency injections counted'
assert_metric '^ws_serve_panics_total [1-9]' 'contained handler panics counted'
assert_metric '^wsserved_breaker_transitions_total{from="closed",to="open"} [1-9]' \
    'breaker opened under fault load'
assert_metric '^wsserved_breaker_transitions_total{from="open",to="half_open"} [1-9]' \
    'breaker probed after cooldown'

echo "# graceful shutdown"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "FAIL: daemon ignored SIGTERM"; exit 1; }
    sleep 0.1
done
wait "$SRV_PID" 2>/dev/null && RC=0 || RC=$?
[ "$RC" = "0" ] || { echo "FAIL: daemon exited with $RC after SIGTERM"; exit 1; }
echo "ok: clean exit on SIGTERM"

echo "PASS"
