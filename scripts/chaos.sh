#!/usr/bin/env sh
# Chaos harness for the wsserved daemon: boot the real binary with
# deterministic fault injection enabled (panics, errors, latency on the
# serving and scheduling seams), fire a storm of /v1/simulate requests,
# and assert the robustness contract:
#
#   - the daemon survives every injected fault (no crash, no hang);
#   - the circuit breaker on /v1/simulate opens under the fault load and
#     recovers via half-open probes;
#   - the cached endpoints (/v1/fixedpoint, /v1/ode) and the control
#     plane keep serving 200s throughout the storm;
#   - every injected fault is visible in /metrics
#     (wsserved_chaos_injections_total, ws_serve_panics_total, ...).
#
#   scripts/chaos.sh [port] [metrics-snapshot-path]
#
# Cluster mode boots three wsserved replicas peered over loopback, storms
# them with 200 simulate requests through a client that retries across
# replicas, SIGKILLs one replica mid-storm, runs another behind an
# injected network partition, and asserts the cluster contract: no
# surviving replica crashes, every client request lands after retries,
# the dead peer's circuit breaker opens, and — once the dead replica is
# restarted — the breaker recloses and membership heals:
#
#   scripts/chaos.sh cluster [base-port] [metrics-snapshot-dir]
#
# Exits non-zero on the first failed assertion. Needs curl.
set -eu
cd "$(dirname "$0")/.."

MODE=single
if [ "${1:-}" = "cluster" ]; then
    MODE=cluster
    shift
fi

if [ "$MODE" = "cluster" ]; then
    BASEPORT="${1:-18190}"
    SNAPDIR="${2:-}"
    PORT_A="$BASEPORT"
    PORT_B=$((BASEPORT + 1))
    PORT_C=$((BASEPORT + 2))
    URL_A="http://127.0.0.1:$PORT_A"
    URL_B="http://127.0.0.1:$PORT_B"
    URL_C="http://127.0.0.1:$PORT_C"
    BIN="$(mktemp -d)/wsserved"
    PID_A=""
    PID_B=""
    PID_C=""
    trap 'kill "$PID_A" "$PID_B" "$PID_C" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

    echo "# build"
    go build -o "$BIN" ./cmd/wsserved

    # start_replica port self peer1 peer2 [extra flags...]
    start_replica() {
        _port="$1" _self="$2" _p1="$3" _p2="$4"
        shift 4
        "$BIN" -addr "127.0.0.1:$_port" -log off -queue 8 -workers 2 \
            -self "$_self" -peers "$_p1,$_p2" \
            -cluster.gossip 50ms -cluster.rpc-timeout 500ms "$@" &
    }

    wait_healthy() {
        i=0
        until curl -fsS "$1/healthz" >/dev/null 2>&1; do
            i=$((i + 1))
            [ "$i" -lt 50 ] || { echo "FAIL: $1 never became healthy"; exit 1; }
            sleep 0.1
        done
        echo "ok: $1 healthy"
    }

    # wait_metric base-url grep-pattern description
    wait_metric() {
        j=0
        until curl -fsS "$1/metrics" 2>/dev/null | grep -q "$2"; do
            j=$((j + 1))
            [ "$j" -lt 100 ] || {
                echo "FAIL: $3"
                curl -fsS "$1/metrics" 2>/dev/null | grep cluster || true
                exit 1
            }
            sleep 0.1
        done
        echo "ok: $3"
    }

    echo "# start 3 replicas (replica C behind a 35% injected partition)"
    start_replica "$PORT_A" "$URL_A" "$URL_B" "$URL_C"
    PID_A=$!
    start_replica "$PORT_B" "$URL_B" "$URL_A" "$URL_C"
    PID_B=$!
    start_replica "$PORT_C" "$URL_C" "$URL_A" "$URL_B" \
        -chaos.seed 42 -chaos.p.partition 0.35
    PID_C=$!
    wait_healthy "$URL_A"
    wait_healthy "$URL_B"
    wait_healthy "$URL_C"

    echo "# storm: 200 simulate requests, failover client, kill replica B at #100"
    SERVED=0
    RETRIES=0
    FAILED=0
    i=0
    while [ "$i" -lt 200 ]; do
        if [ "$i" -eq 100 ]; then
            kill -KILL "$PID_B"
            echo "  (killed replica B mid-storm)"
        fi
        # Round-robin start target; on any non-200 the client rotates to the
        # next replica with a short pause — the retry discipline the cluster
        # is designed for. A request only counts as failed when every
        # attempt across every replica is exhausted.
        try=0
        ok=0
        while [ "$try" -lt 9 ]; do
            case $(((i + try) % 3)) in
            0) TARGET="$URL_A" ;;
            1) TARGET="$URL_B" ;;
            2) TARGET="$URL_C" ;;
            esac
            CODE=$(curl -s -m 10 -o /dev/null -w '%{http_code}' -X POST \
                -d "{\"n\":4,\"lambda\":0.7,\"horizon\":60,\"warmup\":10,\"reps\":2,\"seed\":$i}" \
                "$TARGET/v1/simulate" || echo 000)
            if [ "$CODE" = "200" ]; then
                ok=1
                break
            fi
            try=$((try + 1))
            RETRIES=$((RETRIES + 1))
            sleep 0.05
        done
        if [ "$ok" = "1" ]; then
            SERVED=$((SERVED + 1))
        else
            FAILED=$((FAILED + 1))
        fi
        # The cached tier on the survivor must stay healthy mid-storm even
        # when the consistent-hash owner of the key is dead or partitioned
        # (forward falls back to local compute).
        if [ $((i % 20)) -eq 0 ]; then
            FP=$(curl -s -m 10 -o /dev/null -w '%{http_code}' -X POST \
                -d "{\"model\":\"simple\",\"lambda\":0.$((50 + i % 49))}" "$URL_A/v1/fixedpoint" || echo 000)
            [ "$FP" = "200" ] || { echo "FAIL: /v1/fixedpoint on A returned $FP mid-storm"; exit 1; }
        fi
        i=$((i + 1))
    done
    echo "storm outcomes: served=$SERVED failed=$FAILED retries=$RETRIES"
    [ "$FAILED" = "0" ] || { echo "FAIL: $FAILED requests failed even after cross-replica retries"; exit 1; }

    kill -0 "$PID_A" 2>/dev/null || { echo "FAIL: replica A died during the storm"; exit 1; }
    kill -0 "$PID_C" 2>/dev/null || { echo "FAIL: replica C died during the storm"; exit 1; }
    echo "ok: surviving replicas alive after the storm"
    curl -fsS "$URL_A/readyz" >/dev/null || { echo "FAIL: replica A not ready after the storm"; exit 1; }
    echo "ok: replica A still ready"

    # The dead peer must be visible: failed gossip polls and an open (or
    # probing half-open) breaker toward B on the survivor.
    wait_metric "$URL_A" "^wsserved_cluster_gossip_total{outcome=\"fail\",peer=\"$URL_B\"} [1-9]" \
        'A counted failed gossip to dead B'
    wait_metric "$URL_A" "^wsserved_cluster_peer_breaker_state{peer=\"$URL_B\"} [12]" \
        'A opened its breaker toward dead B'
    # The partition must be visible on C, and A must still get through to C
    # between drops — partition tolerance, not partition blindness.
    wait_metric "$URL_C" '^wsserved_cluster_rpc_partition_drops_total [1-9]' \
        'C dropped cluster RPCs under the injected partition'
    wait_metric "$URL_A" "^wsserved_cluster_gossip_total{outcome=\"ok\",peer=\"$URL_C\"} [1-9]" \
        'A still gossips with partitioned C between drops'

    echo "# restart replica B: the breaker must reclose and membership heal"
    start_replica "$PORT_B" "$URL_B" "$URL_A" "$URL_C"
    PID_B=$!
    wait_healthy "$URL_B"
    wait_metric "$URL_A" "^wsserved_cluster_peer_breaker_state{peer=\"$URL_B\"} 0" \
        'A reclosed its breaker toward restarted B'
    wait_metric "$URL_A" '^wsserved_cluster_peers_healthy 2' \
        'A sees both peers healthy again'

    if [ -n "$SNAPDIR" ]; then
        mkdir -p "$SNAPDIR"
        curl -fsS "$URL_A/metrics" >"$SNAPDIR/replica-a.metrics"
        curl -fsS "$URL_B/metrics" >"$SNAPDIR/replica-b.metrics"
        curl -fsS "$URL_C/metrics" >"$SNAPDIR/replica-c.metrics"
        echo "ok: metrics snapshots written to $SNAPDIR"
    fi

    echo "# graceful shutdown of all replicas"
    for P in "$PID_A" "$PID_B" "$PID_C"; do
        kill -TERM "$P"
    done
    for P in "$PID_A" "$PID_B" "$PID_C"; do
        i=0
        while kill -0 "$P" 2>/dev/null; do
            i=$((i + 1))
            [ "$i" -lt 100 ] || { echo "FAIL: replica $P ignored SIGTERM"; exit 1; }
            sleep 0.1
        done
        wait "$P" 2>/dev/null && RC=0 || RC=$?
        [ "$RC" = "0" ] || { echo "FAIL: replica $P exited with $RC after SIGTERM"; exit 1; }
    done
    echo "ok: clean exit on SIGTERM for all replicas"

    echo "PASS"
    exit 0
fi

PORT="${1:-18090}"
SNAPSHOT="${2:-}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/wsserved"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

echo "# build"
go build -o "$BIN" ./cmd/wsserved

echo "# start (chaos: panic 0.05, error 0.1, latency 0.2)"
"$BIN" -addr "127.0.0.1:$PORT" -log off -queue 64 \
    -chaos.seed 42 \
    -chaos.p.panic 0.05 -chaos.p.error 0.1 -chaos.p.latency 0.2 \
    -chaos.latency 2ms \
    -breaker.threshold 0.10 -breaker.window 20 -breaker.min-samples 10 \
    -breaker.cooldown 200ms &
SRV_PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "FAIL: daemon never became healthy"; exit 1; }
    sleep 0.1
done
echo "ok: /healthz"

echo "# storm: 200 simulate requests with varied seeds"
S200=0
S422=0
S500=0
S503=0
OTHER=0
i=0
while [ "$i" -lt 200 ]; do
    CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        -d "{\"n\":4,\"lambda\":0.7,\"horizon\":60,\"warmup\":10,\"reps\":1,\"seed\":$i}" \
        "$BASE/v1/simulate" || echo 000)
    case "$CODE" in
    200) S200=$((S200 + 1)) ;;
    422) S422=$((S422 + 1)) ;;
    500) S500=$((S500 + 1)) ;;
    503)
        S503=$((S503 + 1))
        sleep 0.05 # polite backoff lets the breaker cool down and probe
        ;;
    *) OTHER=$((OTHER + 1)) ;;
    esac
    # The cached tier must stay healthy mid-storm.
    if [ $((i % 20)) -eq 0 ]; then
        FP=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
            -d '{"model":"simple","lambda":0.9}' "$BASE/v1/fixedpoint")
        [ "$FP" = "200" ] || { echo "FAIL: /v1/fixedpoint returned $FP mid-storm"; exit 1; }
        ODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
            -d '{"model":"simple","lambda":0.8,"span":5}' "$BASE/v1/ode")
        [ "$ODE" = "200" ] || { echo "FAIL: /v1/ode returned $ODE mid-storm"; exit 1; }
    fi
    i=$((i + 1))
done
echo "storm outcomes: 200=$S200 422=$S422 500=$S500 503=$S503 other=$OTHER"
[ "$OTHER" = "0" ] || { echo "FAIL: $OTHER requests got no HTTP response (daemon crash?)"; exit 1; }
[ "$S200" -gt 0 ] || { echo "FAIL: no simulate request ever succeeded"; exit 1; }
[ "$S500" -gt 0 ] || { echo "FAIL: no injected fault surfaced as a 500"; exit 1; }

# The daemon must still be alive and ready.
kill -0 "$SRV_PID" 2>/dev/null || { echo "FAIL: daemon died during the storm"; exit 1; }
curl -fsS "$BASE/readyz" >/dev/null || { echo "FAIL: daemon not ready after the storm"; exit 1; }
echo "ok: daemon survived the storm"

METRICS=$(curl -fsS "$BASE/metrics")
if [ -n "$SNAPSHOT" ]; then
    printf '%s\n' "$METRICS" >"$SNAPSHOT"
    echo "ok: metrics snapshot written to $SNAPSHOT"
fi

assert_metric() {
    printf '%s\n' "$METRICS" | grep -q "$1" || {
        echo "FAIL: /metrics missing $2"
        printf '%s\n' "$METRICS" | grep -E 'chaos|breaker|panic' || true
        exit 1
    }
    echo "ok: $2"
}

assert_metric '^wsserved_chaos_injections_total{kind="panic",site="serve.simulate"} [1-9]' \
    'panic injections counted'
assert_metric '^wsserved_chaos_injections_total{kind="error",site="serve.simulate"} [1-9]' \
    'error injections counted'
assert_metric '^wsserved_chaos_injections_total{kind="latency",site="serve.simulate"} [1-9]' \
    'latency injections counted'
assert_metric '^ws_serve_panics_total [1-9]' 'contained handler panics counted'
assert_metric '^wsserved_breaker_transitions_total{from="closed",to="open"} [1-9]' \
    'breaker opened under fault load'
assert_metric '^wsserved_breaker_transitions_total{from="open",to="half_open"} [1-9]' \
    'breaker probed after cooldown'

echo "# graceful shutdown"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "FAIL: daemon ignored SIGTERM"; exit 1; }
    sleep 0.1
done
wait "$SRV_PID" 2>/dev/null && RC=0 || RC=$?
[ "$RC" = "0" ] || { echo "FAIL: daemon exited with $RC after SIGTERM"; exit 1; }
echo "ok: clean exit on SIGTERM"

echo "PASS"
