#!/usr/bin/env sh
# End-to-end smoke test of the wsserved daemon: build the real binary,
# boot it, exercise health, a cached fixed-point round trip, the metrics
# endpoint, and graceful SIGTERM shutdown.
#
#   scripts/smoke_serve.sh [port]
#
# Exits non-zero on the first failed assertion. Needs curl.
set -eu
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/wsserved"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

echo "# build"
go build -o "$BIN" ./cmd/wsserved

echo "# start"
"$BIN" -addr "127.0.0.1:$PORT" -log off &
SRV_PID=$!

# Poll /healthz until the daemon is up (or give up after ~5s).
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "FAIL: daemon never became healthy"; exit 1; }
    sleep 0.1
done
echo "ok: /healthz"

curl -fsS "$BASE/readyz" >/dev/null
echo "ok: /readyz"

# Two identical fixed-point requests: identical bytes, second is a cache hit.
BODY='{"model":"simple","lambda":0.9}'
R1=$(curl -fsS -X POST -d "$BODY" "$BASE/v1/fixedpoint")
R2=$(curl -fsS -X POST -d "$BODY" "$BASE/v1/fixedpoint")
[ "$R1" = "$R2" ] || { echo "FAIL: repeated request returned different bytes"; exit 1; }
echo "$R1" | grep -q '"sojourn_time"' || { echo "FAIL: response missing sojourn_time"; exit 1; }
echo "ok: /v1/fixedpoint byte-stable"

METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^wsserved_cache_hits_total 1$' || {
    echo "FAIL: expected exactly one cache hit in /metrics"
    echo "$METRICS" | grep cache || true
    exit 1
}
echo "ok: cache hit visible in /metrics"

# A small simulate round trip through the admission queue and pool.
SIM=$(curl -fsS -X POST -d '{"n":8,"lambda":0.8,"horizon":500,"reps":2,"seed":3}' "$BASE/v1/simulate")
echo "$SIM" | grep -q '"sojourn"' || { echo "FAIL: simulate response missing sojourn"; exit 1; }
echo "ok: /v1/simulate"

# Malformed input is a 400, not a crash.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"model":"simple","lambda":-1}' "$BASE/v1/fixedpoint")
[ "$CODE" = "400" ] || { echo "FAIL: invalid request returned $CODE, want 400"; exit 1; }
echo "ok: validation rejects bad lambda with 400"

echo "# graceful shutdown"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "FAIL: daemon ignored SIGTERM"; exit 1; }
    sleep 0.1
done
wait "$SRV_PID" 2>/dev/null && RC=0 || RC=$?
[ "$RC" = "0" ] || { echo "FAIL: daemon exited with $RC after SIGTERM"; exit 1; }
echo "ok: clean exit on SIGTERM"

echo "PASS"
