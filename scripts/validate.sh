#!/usr/bin/env sh
# Statistical cross-validation smoke: build wscheck and run the full
# sim ↔ mean-field ↔ closed-form agreement suite over every registered
# variant, writing the machine-readable report for the CI artifact.
#
#   scripts/validate.sh [out.json] [extra wscheck flags...]
#
# The default scale is -quick: the same checks as the full suite at
# reduced n / horizon / replication counts with proportionally wider
# equivalence margins, sized to finish in well under a minute on one
# core. Pass extra flags (e.g. -seed 7) after the output path; run
# `wscheck -all` directly for the full-scale suite.
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-validate.json}"
[ "$#" -gt 0 ] && shift

BIN="$(mktemp -d)/wscheck"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

echo "# build"
go build -o "$BIN" ./cmd/wscheck

echo "# validate (quick scale, report -> $OUT)"
"$BIN" -all -quick -out "$OUT" "$@"
