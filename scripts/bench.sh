#!/usr/bin/env sh
# Regenerate the repository's performance record.
#
#   scripts/bench.sh [extra wsbench flags...]
#
# Writes BENCH_PR8.json at the repo root (ns/event and allocs/event for the
# steady-state engine configurations, plus Table 1-4 wall times at 1 worker
# vs GOMAXPROCS) and then runs the Go micro-benchmarks once for a quick
# smoke reading. Commit the refreshed JSON alongside performance changes;
# compare the throughput section against the previous BENCH_PR*.json to
# check the exponential fast path stayed within ±10%.
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/wsbench -out BENCH_PR8.json "$@"
echo
go test -run '^$' -bench 'BenchmarkSimulatorThroughput|BenchmarkRunnerReuse|BenchmarkPolicySimpleSteal|BenchmarkStealHalf' -benchmem ./internal/sim/ .
