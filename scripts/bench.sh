#!/usr/bin/env sh
# Regenerate the repository's performance record.
#
#   scripts/bench.sh [extra wsbench flags...]
#
# Writes BENCH_PR3.json at the repo root (ns/event and allocs/event for the
# steady-state engine configurations, plus Table 1-4 wall times at 1 worker
# vs GOMAXPROCS) and then runs the Go micro-benchmarks once for a quick
# smoke reading. Commit the refreshed JSON alongside performance changes.
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/wsbench -out BENCH_PR3.json "$@"
echo
go test -run '^$' -bench 'BenchmarkSimulatorThroughput|BenchmarkRunnerReuse|BenchmarkPolicySimpleSteal|BenchmarkStealHalf' -benchmem ./internal/sim/ .
