#!/usr/bin/env sh
# Regenerate the repository's performance record.
#
#   scripts/bench.sh [extra wsbench flags...]
#
# Writes BENCH_PR10.json at the repo root (ns/event and allocs/event for the
# steady-state engine configurations, plus Table 1-4 wall times at 1 worker
# vs GOMAXPROCS) and then runs the Go micro-benchmarks once for a quick
# smoke reading. Commit the refreshed JSON alongside performance changes.
#
# To gate against the previous record instead of eyeballing it, pass the
# comparison flags through to wsbench — the script exits non-zero if any
# throughput config regressed past the threshold (25% by default, sized to
# ride out shared-machine jitter while catching real cliffs):
#
#   scripts/bench.sh -compare BENCH_PR8.json
#   scripts/bench.sh -compare BENCH_PR8.json -maxregress 0.10
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/wsbench -out BENCH_PR10.json "$@"
echo
go test -run '^$' -bench 'BenchmarkSimulatorThroughput|BenchmarkRunnerReuse|BenchmarkPolicySimpleSteal|BenchmarkStealHalf|BenchmarkCalendarPushPop' -benchmem ./internal/sim/ ./internal/eventq/ .
